#include "fault/torture.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/cluster.h"
#include "net/message.h"
#include "recovery/node_psn_list.h"
#include "trace/trace_export.h"
#include "trace/trace_sink.h"
#include "wal/log_reader.h"

namespace clog {
namespace {

// ---------------------------------------------------------------------------
// Schedule hashing: incremental FNV-1a64 over the event strings. Events never
// contain filesystem paths or addresses, so hashes are stable across machines.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  h ^= '\n';
  h *= kFnvPrime;
  return h;
}

std::string OptStr(const std::optional<std::string>& v) {
  return v ? "\"" + *v + "\"" : "<absent>";
}

/// One record's role in an in-flight transaction: the committed value before
/// the transaction and the value it will have if the commit lands. For an
/// insert `prior` is absent; for a delete `staged` is absent.
struct StagedWrite {
  RecordId rid;
  std::optional<std::string> prior;
  std::optional<std::string> staged;
};

/// A transaction whose Commit() returned an error while faults were live:
/// its commit record may or may not have reached the durable log, so the
/// model cannot say which state is correct until the node restarts and
/// recovery decides. Resolved (all-or-nothing) at the next full restart.
struct PendingTxn {
  NodeId node = kInvalidNodeId;
  std::vector<StagedWrite> writes;
};

/// Group commit: a transaction whose CommitRequest parked. Not yet
/// acknowledged — the model treats its records as indeterminate until the
/// node's shared force completes it (ack) or its node crashes while it is
/// parked (becomes a PendingTxn, resolved at restart like any commit
/// interrupted mid-force).
struct ParkedTxn {
  NodeId node = kInvalidNodeId;
  TxnId txn = kInvalidTxnId;
  std::vector<StagedWrite> writes;
};

// ---------------------------------------------------------------------------
// TortureRun: one seeded schedule, start to verdict.
// ---------------------------------------------------------------------------

class TortureRun {
 public:
  explicit TortureRun(const TortureOptions& options)
      : options_(options),
        rng_(options.seed),
        injector_(options.seed),
        trace_(options.trace_events_per_node) {}

  ~TortureRun() {
    cluster_.reset();  // Close files before removing the directory.
    if (owns_dir_ && !dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  TortureReport Run() {
    report_.seed = options_.seed;
    Setup();
    if (failure_.empty()) {
      for (int step = 0; step < options_.steps && failure_.empty(); ++step) {
        Step(step);
      }
    }
    if (failure_.empty()) FinalPhase();
    Finish();
    return std::move(report_);
  }

 private:
  // --- Bookkeeping ------------------------------------------------------

  void Event(const std::string& s) {
    hash_ = FnvMix(hash_, s);
    if (options_.keep_events) report_.events.push_back(s);
  }

  void Fail(const std::string& msg) {
    if (failure_.empty()) failure_ = msg;
    Event("FAIL " + msg);
  }

  void Finish() {
    report_.ok = failure_.empty();
    report_.failure = failure_;
    report_.schedule_hash = hash_;
    report_.trace_hash = trace_.Hash();
    if (!failure_.empty()) {
      TraceFormatOptions fmt;
      fmt.msg_name = [](std::uint32_t t) {
        return MsgTypeName(static_cast<MsgType>(t));
      };
      report_.trace_tail = FormatTrace(trace_, /*tail=*/32, fmt);
    }
    report_.faults = injector_.counters();
    if (cluster_ != nullptr) {
      const Metrics& m = cluster_->network().metrics();
      report_.rpc_retries = m.CounterValue("rpc.retries");
      report_.rpc_retry_success = m.CounterValue("rpc.retry_success");
      report_.rpc_retry_exhausted = m.CounterValue("rpc.retry_exhausted");
      report_.hb_probes = m.CounterValue("hb.probes");
      report_.restore_planned = cluster_->SumCounter("restore.pages_planned");
      report_.restore_from_peer =
          cluster_->SumCounter("restore.pages_from_peer");
      report_.restore_from_archive =
          cluster_->SumCounter("restore.pages_from_archive");
      report_.restore_from_seed =
          cluster_->SumCounter("restore.pages_from_seed");
      report_.restore_already_durable =
          cluster_->SumCounter("restore.pages_already_durable");
    }
  }

  std::string NextValue() { return "v" + std::to_string(++value_seq_); }

  std::optional<std::string> ModelValue(RecordId rid) const {
    auto it = model_.find(rid);
    return it == model_.end() ? std::nullopt : it->second;
  }

  bool InPending(RecordId rid) const {
    for (const PendingTxn& p : pending_) {
      for (const StagedWrite& w : p.writes) {
        if (w.rid == rid) return true;
      }
    }
    // Parked group commits are indeterminate too: an absorbed force on
    // their node can complete them at any moment between our polls, so
    // the model cannot pin their records' values until the ack.
    for (const ParkedTxn& p : parked_) {
      for (const StagedWrite& w : p.writes) {
        if (w.rid == rid) return true;
      }
    }
    return false;
  }

  /// The model cannot pin this record's value: its commit is in flight
  /// (pending/parked), its page is currently fenced as unrecoverable, or a
  /// media failure swallowed the only evidence of an indeterminate commit
  /// touching it (cursed — unverifiable forever). Healthy-mode schedules
  /// never populate the latter two sets, so this reduces to InPending.
  bool Unverifiable(RecordId rid) const {
    return InPending(rid) || poisoned_.contains(rid.page) ||
           cursed_.contains(rid);
  }

  /// Media machinery live this run: media-failure mode, or the
  /// instant-restore hammer (media plus on-demand rebuild on every node).
  bool MediaMode() const {
    return options_.media_failure || options_.hammer_restore;
  }

  /// Re-reads every up node's poison ledger into the harness's view of the
  /// fenced-page set. Call only when all nodes are up (post-restart), so a
  /// down node's ledger can't silently drop out. Emits a deterministic
  /// event per transition so poison verdicts are part of the schedule hash.
  void HarvestPoison() {
    if (!MediaMode()) return;
    std::set<PageId> now;
    for (NodeId id : cluster_->NodeIds()) {
      Node* n = cluster_->node(id);
      if (n == nullptr || n->state() != NodeState::kUp) continue;
      for (PageId pid : n->PoisonedPages()) now.insert(pid);
    }
    for (PageId pid : now) {
      if (!poisoned_.contains(pid)) Event("poison " + pid.ToString());
    }
    for (PageId pid : poisoned_) {
      if (!now.contains(pid)) Event("unpoison " + pid.ToString());
    }
    poisoned_ = std::move(now);
    report_.pages_poisoned = poisoned_.size();
  }

  std::vector<NodeId> UpNodes() const {
    std::vector<NodeId> up;
    for (NodeId id : cluster_->NodeIds()) {
      Node* n = const_cast<Cluster*>(cluster_.get())->node(id);
      if (n != nullptr && n->state() == NodeState::kUp) up.push_back(id);
    }
    return up;
  }

  NodeId RandomUpNode() {
    std::vector<NodeId> up = UpNodes();
    return up[rng_.Uniform(up.size())];
  }

  RecordId RandomRid() { return rids_[rng_.Uniform(rids_.size())]; }

  void CrashActor(NodeId id, const char* why) {
    Node* n = cluster_->node(id);
    if (n == nullptr || n->state() != NodeState::kUp) return;
    // An abrupt crash discards this node's unforced log tail. A page it
    // holds dirty whose newest records sit in that tail (an abort's update
    // and CLR force nothing) can legally resurface at a lower PSN — no
    // committed update rode on those records. Forget such pages'
    // never-regress watermarks; the next sighting re-seeds them. (This
    // also forgets any durable floor the page had earlier — acceptable:
    // the alternative is a false regression alarm on legal loser-state
    // loss, and the model value checks still cover committed data.)
    for (PageId pid : pages_) {
      const Page* p = n->pool().Peek(pid);
      if (p != nullptr && n->pool().IsDirty(pid) &&
          p->page_lsn() >= n->log().flushed_lsn()) {
        watermark_.erase(pid);
      }
    }
    Status st = cluster_->CrashNode(id);
    if (!st.ok()) {
      Fail("CrashNode(" + std::to_string(id) + "): " + st.ToString());
      return;
    }
    ++report_.crashes;
    Event("crash node=" + std::to_string(id) + " why=" + why);
  }

  // --- Setup ------------------------------------------------------------

  void Setup() {
    if (options_.scratch_dir.empty()) {
      std::string tmpl = "/tmp/clog_torture_XXXXXX";
      std::vector<char> buf(tmpl.begin(), tmpl.end());
      buf.push_back('\0');
      if (::mkdtemp(buf.data()) == nullptr) {
        Fail("mkdtemp failed");
        return;
      }
      dir_ = buf.data();
      owns_dir_ = true;
    } else {
      dir_ = options_.scratch_dir;
    }

    // The fault mix this seed runs under. Every seed tolerates crashes and
    // torn log tails; richer mixes add message faults, armed I/O faults,
    // and partitions.
    FaultConfig cfg;
    int mix = static_cast<int>(rng_.Uniform(4));
    cfg.torn_tail_p = 0.4;
    if (mix >= 1) {
      cfg.net_drop_p = 0.02;
      cfg.net_delay_p = 0.05;
      cfg.net_duplicate_p = 0.05;
    }
    use_io_faults_ = mix >= 2;
    use_partitions_ = mix == 3;
    injector_.set_config(cfg);
    injector_.set_enabled(false);  // Quiet while the cluster is built.
    Event("mix=" + std::to_string(mix));

    ClusterOptions copts;
    copts.dir = dir_;
    copts.fault_injector = &injector_;
    copts.trace_sink = &trace_;
    // A pool smaller than the working set keeps pages bouncing through the
    // eviction/ship/force paths, where most of the interesting fault
    // interactions (torn and failed page writes included) live.
    copts.node_defaults.buffer_frames = 4;
    // The availability envelope runs hot in every schedule: transient drops
    // get retried behind the admission layer, and recovering owners park
    // requests instead of bouncing them. The jitter stream is derived from
    // the schedule seed so replays stay bit-identical.
    copts.retry_policy.enabled = true;
    copts.retry_policy.jitter_seed = options_.seed ^ 0xC10CBEEFull;
    if (options_.group_commit) {
      copts.logging_policy.WithGroupCommitWindow(2'000'000, 4);
      Event("group-commit on");
    }
    if (options_.adaptive) {
      // Strategy-mix schedules: the cluster default is adaptive (DoTxn
      // overrides a seeded fraction back to physical), and the redo
      // scheduler handles every self-only page during restarts. Two
      // workers keep the real-mode pool path honest; the simulation
      // replays the chains sequentially either way.
      copts.logging_policy.WithStrategy(LogStrategy::kAdaptive)
          .WithRedoWorkers(2);
      Event("adaptive on");
    }
    if (MediaMode()) {
      // Media schedules run with the archive at its most aggressive
      // cadence so device losses land on pages with fresh base images.
      copts.node_defaults.logging_policy.WithArchiveEvery(1);
      Event("media-failure on");
    }
    if (options_.hammer_restore) {
      // Hammer: data-device losses defer their rebuilds to instant restore
      // instead of recovering eagerly; the step loop sweeps one page per
      // node per step so the backlog drains while the workload keeps
      // landing on half-restored nodes.
      copts.node_defaults.instant_restore.enabled = true;
      copts.node_defaults.instant_restore.sweep_batch = 1;
      Event("hammer-restore on");
    }
    cluster_ = std::make_unique<Cluster>(copts);

    for (int i = 0; i < options_.num_nodes; ++i) {
      Result<Node*> added = cluster_->AddNode();
      if (!added.ok()) {
        Fail("AddNode: " + added.status().ToString());
        return;
      }
    }

    // Seed data: every node owns `pages_per_node` pages, each preloaded
    // with `records_per_page` committed records.
    for (NodeId id : cluster_->NodeIds()) {
      Node* n = cluster_->node(id);
      for (int p = 0; p < options_.pages_per_node; ++p) {
        Result<PageId> pid = n->AllocatePage();
        if (!pid.ok()) {
          Fail("AllocatePage: " + pid.status().ToString());
          return;
        }
        pages_.push_back(*pid);
        Result<TxnId> txn = n->Begin();
        if (!txn.ok()) {
          Fail("seed Begin: " + txn.status().ToString());
          return;
        }
        for (int r = 0; r < options_.records_per_page; ++r) {
          std::string val = NextValue();
          Result<RecordId> rid = n->Insert(*txn, *pid, val);
          if (!rid.ok()) {
            Fail("seed Insert: " + rid.status().ToString());
            return;
          }
          model_[*rid] = val;
          rids_.push_back(*rid);
          known_.insert(*rid);
        }
        Status st = n->Commit(*txn);
        if (!st.ok()) {
          Fail("seed Commit: " + st.ToString());
          return;
        }
      }
    }
    // Media mode: checkpoint every node once before faults go live, so a
    // durable log mark and a first sealed archive pass exist before any
    // device can be lost.
    if (MediaMode()) {
      for (NodeId id : cluster_->NodeIds()) {
        Status st = cluster_->node(id)->Checkpoint();
        if (!st.ok()) {
          Fail("seed Checkpoint: " + st.ToString());
          return;
        }
      }
    }
    Event("setup nodes=" + std::to_string(options_.num_nodes) +
          " pages=" + std::to_string(pages_.size()) +
          " records=" + std::to_string(rids_.size()));
    injector_.set_enabled(true);
  }

  // --- The step loop ----------------------------------------------------

  void Step(int step) {
    // Fail-stop: a node whose armed I/O fault fired must not keep running
    // on a device that lied to it (the PostgreSQL fsync lesson).
    for (NodeId id : injector_.TakeFiredNodes()) {
      CrashActor(id, "io-fault-fired");
      if (!failure_.empty()) return;
    }
    PollParked();
    if (!failure_.empty()) return;
    if (UpNodes().empty()) {
      Event("step=" + std::to_string(step) + " all-down");
      DoRestartAll();
      if (!failure_.empty()) return;
    }
    // Hammer mode: the background sweeper's stand-in — one page per up
    // node per step (no RNG draw), so rebuilds interleave with the
    // workload instead of the backlog draining in one burst.
    if (options_.hammer_restore) {
      for (NodeId id : UpNodes()) cluster_->node(id)->SweepRestore(1);
    }
    // Elastic mode: membership churn rides on top of the normal step mix.
    // The extra RNG draws happen only when the mode is on, so every
    // non-elastic schedule's stream — and hash — is byte-identical to a
    // build without the subsystem.
    if (options_.elastic && rng_.Uniform(100) < 12) {
      DoElasticOp(step);
      if (!failure_.empty()) return;
    }

    std::uint64_t dice = rng_.Uniform(100);
    if (dice < 42) {
      DoTxn(step);
    } else if (dice < 54) {
      DoRead(step);
    } else if (dice < 64) {
      DoCrash(step);
    } else if (dice < 74) {
      DoRestartAll();
    } else if (dice < 82) {
      if (use_partitions_) {
        DoPartition(step);
      } else {
        DoTxn(step);
      }
    } else if (dice < 90) {
      if (use_io_faults_) {
        DoArmIoFault(step);
      } else {
        DoCheckpoint(step);
      }
    } else if (dice < 95) {
      DoFlush(step);
    } else {
      DoCheckpoint(step);
    }
    if (!failure_.empty()) return;

    for (NodeId id : UpNodes()) {
      Status st = cluster_->node(id)->CheckInvariants(false);
      if (!st.ok()) {
        Fail("step=" + std::to_string(step) + " node=" + std::to_string(id) +
             " invariants: " + st.ToString());
        return;
      }
    }
  }

  void DoTxn(int step) {
    NodeId actor = RandomUpNode();
    Node* n = cluster_->node(actor);
    // Strategy mix (adaptive mode only, so other schedules keep their RNG
    // stream byte-identical): roughly a third of the transactions force
    // physical records, the rest inherit the cluster's adaptive default.
    // Physical and logical records from concurrent transactions then
    // interleave on the same pages, which is where upgrade, backfill, and
    // skip classification earn their keep.
    TxnOptions topts;
    if (options_.adaptive && rng_.Uniform(100) < 35) {
      topts.strategy = LogStrategy::kPhysical;
    }
    Result<TxnId> begun = n->Begin(topts);
    if (!begun.ok()) {
      Event("txn node=" + std::to_string(actor) + " begin-failed");
      return;
    }
    if (options_.adaptive && !topts.strategy.has_value()) {
      ++report_.txns_adaptive;
    }
    TxnId txn = *begun;
    // rid -> (value before this txn, value if this txn commits).
    std::map<RecordId,
             std::pair<std::optional<std::string>, std::optional<std::string>>>
        staged;
    auto prior_of = [&](RecordId rid) {
      auto it = staged.find(rid);
      return it != staged.end() ? it->second.first : ModelValue(rid);
    };
    auto expected_of = [&](RecordId rid) {
      auto it = staged.find(rid);
      return it != staged.end() ? it->second.second : ModelValue(rid);
    };

    bool gave_up = false;
    int nops = 1 + static_cast<int>(rng_.Uniform(3));
    int done = 0;
    for (int op = 0; op < nops; ++op) {
      std::uint64_t kind = rng_.Uniform(100);
      if (kind < 55) {  // Update.
        RecordId rid = RandomRid();
        std::string val = NextValue();
        Status st = n->Update(txn, rid, val);
        if (st.IsNotFound()) {
          // Deleted record; a legal no-op pick unless the model disagrees.
          if (expected_of(rid).has_value() && !Unverifiable(rid)) {
            Fail("update lost record " + rid.ToString() + " expected " +
                 OptStr(expected_of(rid)));
            break;
          }
          continue;
        }
        if (!st.ok()) {
          gave_up = true;
          break;
        }
        if (!expected_of(rid).has_value()) {
          Fail("update succeeded on deleted record " + rid.ToString());
          break;
        }
        staged[rid] = {prior_of(rid), val};
        ++done;
      } else if (kind < 70) {  // Insert.
        PageId pid = pages_[rng_.Uniform(pages_.size())];
        std::string val = NextValue();
        Result<RecordId> rid = n->Insert(txn, pid, val);
        if (!rid.ok()) {
          gave_up = true;
          break;
        }
        staged[*rid] = {prior_of(*rid), val};
        ++done;
      } else if (kind < 85) {  // Delete.
        RecordId rid = RandomRid();
        Status st = n->Delete(txn, rid);
        if (st.IsNotFound()) {
          if (expected_of(rid).has_value() && !Unverifiable(rid)) {
            Fail("delete lost record " + rid.ToString());
            break;
          }
          continue;
        }
        if (!st.ok()) {
          gave_up = true;
          break;
        }
        if (!expected_of(rid).has_value()) {
          Fail("delete succeeded on deleted record " + rid.ToString());
          break;
        }
        staged[rid] = {prior_of(rid), std::nullopt};
        ++done;
      } else {  // Read (checked against the model + this txn's writes).
        RecordId rid = RandomRid();
        if (Unverifiable(rid)) continue;  // Indeterminate until next restart.
        Result<std::string> got = n->Read(txn, rid);
        std::optional<std::string> expected = expected_of(rid);
        if (got.ok()) {
          if (!expected || *expected != *got) {
            Fail("txn read mismatch " + rid.ToString() + " got \"" + *got +
                 "\" expected " + OptStr(expected));
            break;
          }
          ++report_.reads_checked;
        } else if (got.status().IsNotFound()) {
          if (expected) {
            Fail("txn read lost record " + rid.ToString() + " expected " +
                 OptStr(expected));
            break;
          }
          ++report_.reads_checked;
        } else {
          gave_up = true;
          break;
        }
      }
    }
    if (!failure_.empty()) {
      (void)n->Abort(txn);
      return;
    }

    if (gave_up || staged.empty()) {
      Status ab = n->Abort(txn);
      ++report_.txns_aborted;
      Event("txn step=" + std::to_string(step) +
            " node=" + std::to_string(actor) + " aborted ops=" +
            std::to_string(done));
      if (!ab.ok()) CrashActor(actor, "abort-failed");
      return;
    }

    // Sometimes die with the transaction still open: recovery must undo it.
    if (rng_.Uniform(100) < 8) {
      Event("txn step=" + std::to_string(step) +
            " node=" + std::to_string(actor) + " midcrash ops=" +
            std::to_string(done));
      CrashActor(actor, "mid-txn");
      return;
    }

    Status cs;
    if (options_.group_commit) {
      Result<bool> durable = n->CommitRequest(txn);
      cs = durable.status();
      if (cs.ok() && !*durable) {
        // Parked: not yet acknowledged. The model holds its records
        // indeterminate (InPending) until PollParked sees the ack.
        ParkedTxn parked;
        parked.node = actor;
        parked.txn = txn;
        for (const auto& [rid, vals] : staged) {
          parked.writes.push_back(StagedWrite{rid, vals.first, vals.second});
        }
        parked_.push_back(std::move(parked));
        ++report_.txns_parked;
        Event("txn step=" + std::to_string(step) +
              " node=" + std::to_string(actor) + " parked ops=" +
              std::to_string(done));
        return;
      }
    } else {
      cs = n->Commit(txn);
    }
    if (cs.ok()) {
      for (const auto& [rid, vals] : staged) {
        model_[rid] = vals.second;
        if (known_.insert(rid).second) rids_.push_back(rid);
      }
      ++report_.txns_committed;
      Event("txn step=" + std::to_string(step) +
            " node=" + std::to_string(actor) + " committed ops=" +
            std::to_string(done));
    } else {
      // The commit record may or may not be durable; recovery decides.
      PendingTxn pending;
      pending.node = actor;
      for (const auto& [rid, vals] : staged) {
        pending.writes.push_back(StagedWrite{rid, vals.first, vals.second});
      }
      pending_.push_back(std::move(pending));
      ++report_.txns_indeterminate;
      Event("txn step=" + std::to_string(step) +
            " node=" + std::to_string(actor) + " indeterminate ops=" +
            std::to_string(done));
      CrashActor(actor, "commit-failed");
    }
  }

  void DoRead(int step) {
    NodeId actor = RandomUpNode();
    Node* n = cluster_->node(actor);
    RecordId rid = RandomRid();
    Result<TxnId> begun = n->Begin();
    if (!begun.ok()) return;
    TxnId txn = *begun;
    Result<std::string> got = n->Read(txn, rid);
    bool checked = false;
    if (!Unverifiable(rid)) {
      std::optional<std::string> expected = ModelValue(rid);
      if (got.ok()) {
        if (!expected || *expected != *got) {
          Fail("read mismatch " + rid.ToString() + " got \"" + *got +
               "\" expected " + OptStr(expected));
        }
        checked = true;
      } else if (got.status().IsNotFound()) {
        if (expected) {
          Fail("read lost record " + rid.ToString() + " expected " +
               OptStr(expected));
        }
        checked = true;
      }
      // Busy / NodeDown / injected IOError: nothing to conclude.
    }
    if (checked) ++report_.reads_checked;
    Status done = n->Commit(txn);
    Event("read step=" + std::to_string(step) +
          " node=" + std::to_string(actor) +
          (checked ? " checked" : " gave-up"));
    if (!done.ok()) CrashActor(actor, "read-commit-failed");
  }

  void DoCrash(int step) {
    NodeId victim = RandomUpNode();
    if (MediaMode() && rng_.Uniform(100) < 35) {
      DoDeviceLoss(step, victim);
      return;
    }
    Event("sched-crash step=" + std::to_string(step));
    CrashActor(victim, "scheduled");
  }

  /// Media mode: arm a whole-device loss and crash the victim so the fault
  /// is consumed at the crash point (a live process never observes its own
  /// device vanish under fail-stop). Data-device loss composes freely with
  /// whatever else the schedule has in flight — restart recovery rebuilds
  /// the device from the archive plus every client's log. Log-device loss
  /// is armed only when the victim will be the sole crashed node and is
  /// followed by an immediate full restart: the loss notices it must send
  /// (docs/RECOVERY_WALKTHROUGH.md) need reachable owners, and the model's
  /// poison bookkeeping needs the verdict before the schedule moves on.
  void DoDeviceLoss(int step, NodeId victim) {
    bool lose_log = rng_.Uniform(100) < 30;
    if (UpNodes().size() != cluster_->NodeIds().size()) lose_log = false;
    injector_.ArmDeviceFault(victim, lose_log ? DeviceFault::kDestroyLogFile
                                              : DeviceFault::kDestroyDataFile);
    ++report_.device_losses;
    if (lose_log) {
      ++report_.log_losses;
      log_loss_occurred_ = true;
    }
    Event("device-loss step=" + std::to_string(step) +
          " node=" + std::to_string(victim) +
          " dev=" + (lose_log ? "log" : "data"));
    CrashActor(victim, lose_log ? "log-device-lost" : "data-device-lost");
    if (!failure_.empty()) return;
    if (lose_log) DoRestartAll();
  }

  void DoPartition(int step) {
    if (injector_.AnyLinkBlocked()) {
      injector_.HealAllLinks();
      Event("partition step=" + std::to_string(step) + " healed");
      return;
    }
    std::vector<NodeId> ids = cluster_->NodeIds();
    if (ids.size() < 2) return;
    NodeId a = ids[rng_.Uniform(ids.size())];
    NodeId b = ids[rng_.Uniform(ids.size())];
    if (a == b) b = ids[(a + 1) % ids.size()];
    injector_.BlockLink(a, b);
    ++report_.partitions;
    Event("partition step=" + std::to_string(step) + " block " +
          std::to_string(a) + "-" + std::to_string(b));
  }

  void DoArmIoFault(int step) {
    NodeId victim = RandomUpNode();
    // Media mode widens the mix with kFailPageRead (transient read-path
    // failure); healthy schedules keep the original four-fault modulus so
    // their RNG streams — and hashes — are untouched.
    IoFault fault = static_cast<IoFault>(
        1 + rng_.Uniform(MediaMode() ? 5 : 4));
    injector_.ArmIoFault(victim, fault);
    Event("arm step=" + std::to_string(step) +
          " node=" + std::to_string(victim) +
          " fault=" + std::to_string(static_cast<int>(fault)));
  }

  void DoFlush(int step) {
    // Force one of the actor's own pages to disk — the page-write path an
    // armed torn/failed write fault fires on.
    NodeId actor = RandomUpNode();
    Node* n = cluster_->node(actor);
    std::vector<PageId> own;
    for (PageId pid : pages_) {
      if (cluster_->CurrentOwner(pid) == actor) own.push_back(pid);
    }
    if (own.empty()) return;
    PageId pid = own[rng_.Uniform(own.size())];
    if (poisoned_.contains(pid)) {
      // Fenced page: flushing it is refused by design, not a node fault.
      Event("flush step=" + std::to_string(step) + " poisoned-skip");
      return;
    }
    Status st = n->HandleFlushRequest(actor, pid);
    Event("flush step=" + std::to_string(step) +
          " node=" + std::to_string(actor) + (st.ok() ? " ok" : " failed"));
    // Unavailable is not a lying device: flushing a page still awaiting
    // instant restore rebuilds it first, and that rebuild legitimately
    // blocks while a redo source is down.
    if (!st.ok() && !st.IsUnavailable()) CrashActor(actor, "flush-failed");
  }

  void DoCheckpoint(int step) {
    NodeId actor = RandomUpNode();
    Node* n = cluster_->node(actor);
    Status st = n->Checkpoint();
    Event("checkpoint step=" + std::to_string(step) +
          " node=" + std::to_string(actor) + (st.ok() ? " ok" : " failed"));
    if (!st.ok()) CrashActor(actor, "checkpoint-failed");
  }

  // --- Elastic membership (ownership handoff, join, leave) --------------

  void DoElasticOp(int step) {
    std::uint64_t kind = rng_.Uniform(100);
    if (kind < 70) {
      DoHandoff(step);
    } else if (kind < 85) {
      DoJoin(step);
    } else {
      DoLeave(step);
    }
  }

  /// Moves one seeded page to a seeded up node through the four-phase
  /// protocol. A seeded fraction of the handoffs (all of them under
  /// crash_during_handoff) arms a crash of one endpoint at a seeded phase
  /// boundary; the interrupted handoff must then re-enter from the durable
  /// ledgers at the next restart. A completed handoff is immediately held
  /// to the elastic invariants: durable PSN at the new owner at or above
  /// the watermark, and every committed record on the page readable there.
  void DoHandoff(int step) {
    PageId pid = pages_[rng_.Uniform(pages_.size())];
    std::vector<NodeId> up = UpNodes();
    NodeId to = up[rng_.Uniform(up.size())];
    std::uint64_t arm_roll = rng_.Uniform(100);
    bool arm = options_.crash_during_handoff || arm_roll < 30;
    int boundary = 0;
    bool crash_target = false;
    if (arm) {
      boundary = static_cast<int>(rng_.Uniform(4));
      crash_target = rng_.Uniform(2) == 1;
    }
    NodeId from = cluster_->CurrentOwner(pid);
    if (from == to) {
      Event("handoff step=" + std::to_string(step) + " " + pid.ToString() +
            " self-noop");
      return;
    }
    if (arm) {
      NodeId victim = crash_target ? to : from;
      cluster_->set_handoff_phase_hook(
          [this, victim, boundary](PageId, HandoffPhase phase) {
            if (static_cast<int>(phase) != boundary) return;
            Node* v = cluster_->node(victim);
            if (v == nullptr || v->state() != NodeState::kUp) return;
            CrashActor(victim, "handoff-boundary");
            ++report_.handoff_crashes;
            Event("handoff-crash node=" + std::to_string(victim) +
                  " phase=" + std::to_string(boundary));
          });
    }
    Status st = cluster_->HandoffPage(pid, to);
    cluster_->set_handoff_phase_hook(nullptr);
    Event("handoff step=" + std::to_string(step) + " " + pid.ToString() +
          " " + std::to_string(from) + "->" + std::to_string(to) +
          (st.ok() ? " ok" : " failed"));
    if (!failure_.empty()) return;
    if (st.ok()) {
      ++report_.handoffs;
      CheckHandoffDurability(pid, to);
      return;
    }
    // An armed crash can kill the driver's endpoint after the target
    // already durably adopted (the commit point) — the call reports
    // failure but the transfer took effect. Count it as a handoff so the
    // crash shard's non-degeneracy check measures ownership movement, not
    // clean returns; the post-restart sweep holds it to the invariants.
    if (cluster_->CurrentOwner(pid) == to) ++report_.handoffs;
  }

  /// Elastic invariants 2+3, checked right after a completed handoff with
  /// faults quiesced: the page's newest visible PSN (caches plus the
  /// adopted durable copy) must sit at or above its never-regress
  /// watermark — the transferred RedoLSN horizon must not have lost an
  /// update — and every committed record on the page must read back its
  /// model value from the new owner. Both halves defer to the post-restart
  /// sweep when they cannot conclude anything here: the PSN half needs
  /// every copy visible (a crashed holder may hold the newest version in
  /// its dead cache until its redo restores it), and a read may bounce off
  /// an exclusive lock legitimately retained for a crashed holder
  /// (Section 2.3 — the handoff transfers that residue with the page).
  void CheckHandoffDurability(PageId pid, NodeId to) {
    Node* n = cluster_->node(to);
    if (n == nullptr || n->state() != NodeState::kUp) return;
    if (poisoned_.contains(pid) || n->IsRestoring(pid)) return;
    injector_.set_enabled(false);
    if (UpNodes().size() == cluster_->NodeIds().size()) {
      Psn effective = 0;
      for (NodeId id : cluster_->NodeIds()) {
        const Page* p = cluster_->node(id)->pool().Peek(pid);
        if (p != nullptr) effective = std::max(effective, p->psn());
      }
      Result<Psn> dp = n->DiskPsn(pid);
      if (!dp.ok()) {
        // Zero durable owners: the adopt wrote this image moments ago.
        Fail("handoff " + pid.ToString() +
             ": adopted durable copy unreadable at node " +
             std::to_string(to) + ": " + dp.status().ToString());
        injector_.set_enabled(true);
        return;
      }
      effective = std::max(effective, *dp);
      auto it = watermark_.find(pid);
      if (it != watermark_.end() && effective < it->second) {
        Fail("handoff " + pid.ToString() + ": visible psn regressed " +
             std::to_string(it->second) + " -> " + std::to_string(effective) +
             " across transfer to node " + std::to_string(to));
        injector_.set_enabled(true);
        return;
      }
      watermark_[pid] = effective;
    }
    Result<TxnId> begun = n->Begin();
    if (begun.ok()) {
      for (RecordId rid : rids_) {
        if (rid.page != pid || Unverifiable(rid)) continue;
        Result<std::string> got = n->Read(*begun, rid);
        std::optional<std::string> expected = ModelValue(rid);
        if (got.ok()) {
          if (!expected || *expected != *got) {
            Fail("handoff " + pid.ToString() + ": committed record " +
                 rid.ToString() + " reads \"" + *got + "\" at new owner, " +
                 "expected " + OptStr(expected));
            break;
          }
          ++report_.reads_checked;
        } else if (got.status().IsNotFound()) {
          if (expected) {
            Fail("handoff " + pid.ToString() + ": committed record " +
                 rid.ToString() + " lost at new owner, expected " +
                 OptStr(expected));
            break;
          }
          ++report_.reads_checked;
        } else {
          Event("handoff-check deferred " + pid.ToString());
          break;
        }
      }
      (void)n->Abort(*begun);
    }
    injector_.set_enabled(true);
  }

  void DoJoin(int step) {
    // Cap growth at a few nodes over the seeded complement so a join-heavy
    // schedule cannot allocate without bound.
    if (cluster_->NodeIds().size() >=
        static_cast<std::size_t>(options_.num_nodes) + 4) {
      Event("join step=" + std::to_string(step) + " capped");
      return;
    }
    Result<Node*> added = cluster_->JoinNode();
    if (!added.ok()) {
      Event("join step=" + std::to_string(step) + " failed");
      return;
    }
    ++report_.joins;
    Event("join step=" + std::to_string(step) +
          " node=" + std::to_string((*added)->id()));
  }

  /// Graceful departure: the victim drains every owned page round-robin to
  /// the surviving members, then is halted and marked departed forever.
  /// Failures are tolerated — a drain handoff can hit a Busy page or a
  /// crashed recipient under live faults; pages already moved stay moved
  /// and the node simply keeps running.
  void DoLeave(int step) {
    std::vector<NodeId> up = UpNodes();
    // Never drain the cluster below three up members: the remaining pair
    // must still absorb the departing node's pages and each other's faults.
    if (up.size() < 3 || cluster_->NodeIds().size() < 3) {
      Event("leave step=" + std::to_string(step) + " too-few");
      return;
    }
    NodeId victim = up[rng_.Uniform(up.size())];
    Status st = cluster_->LeaveNode(victim);
    if (!st.ok()) {
      Event("leave step=" + std::to_string(step) +
            " node=" + std::to_string(victim) + " failed");
      return;
    }
    ++report_.leaves;
    Event("leave step=" + std::to_string(step) +
          " node=" + std::to_string(victim) + " ok");
  }

  /// Elastic invariant 1: every page has exactly one durable owner claim —
  /// its home node unless durably ceded, plus whichever node's handoff
  /// ledger holds an adopted image — and the claimant is the directory's
  /// current owner. Zero claims would orphan the page's history; two would
  /// fork it. Requires every (non-departed) node up with all in-flight
  /// handoffs resolved, so callers run it right after ResolveHandoffs.
  void CheckOwnershipClaims(const char* tag) {
    if (!options_.elastic) return;
    for (NodeId id : cluster_->NodeIds()) {
      Node* n = cluster_->node(id);
      if (n == nullptr || n->state() != NodeState::kUp) continue;
      std::vector<PageId> inflight = n->handoff().InflightPages();
      if (!inflight.empty()) {
        Fail(std::string(tag) + " node " + std::to_string(id) + ": " +
             std::to_string(inflight.size()) +
             " handoff(s) still in flight after resolution, first " +
             inflight.front().ToString());
        return;
      }
    }
    for (PageId pid : pages_) {
      NodeId owner = cluster_->CurrentOwner(pid);
      std::size_t claims = 0;
      NodeId claimant = owner;
      for (NodeId id : cluster_->NodeIds()) {
        Node* n = cluster_->node(id);
        if (n == nullptr || n->state() != NodeState::kUp) continue;
        bool claim = pid.owner == id ? !n->handoff().IsCeded(pid)
                                     : n->handoff().IsAdopted(pid);
        if (!claim) continue;
        ++claims;
        claimant = id;
      }
      if (claims != 1) {
        Fail(std::string(tag) + " " + pid.ToString() + ": " +
             std::to_string(claims) + " durable owner claims, want exactly 1");
        return;
      }
      if (claimant != owner) {
        Fail(std::string(tag) + " " + pid.ToString() + ": directory owner " +
             std::to_string(owner) + " but durable claimant " +
             std::to_string(claimant));
        return;
      }
    }
    Event(std::string("ownership-check ") + tag + " ok");
  }

  // --- Group commit bookkeeping -----------------------------------------

  /// The ack: the node confirmed the parked commit durable and finished, so
  /// its staged writes become committed model state.
  void AckParked(const ParkedTxn& p) {
    for (const StagedWrite& w : p.writes) {
      model_[w.rid] = w.staged;
      if (known_.insert(w.rid).second) rids_.push_back(w.rid);
    }
    ++report_.txns_committed;
    Event("gc-ack node=" + std::to_string(p.node));
  }

  /// The parked commit's fate is unknowable from here (its node crashed
  /// while it waited, or the group force failed): same contract as a commit
  /// interrupted mid-force — the commit record may sit in the torn tail.
  void MoveToPending(ParkedTxn& p, const char* why) {
    PendingTxn pending;
    pending.node = p.node;
    pending.writes = std::move(p.writes);
    pending_.push_back(std::move(pending));
    ++report_.txns_indeterminate;
    Event("gc-indeterminate node=" + std::to_string(p.node) + " why=" + why);
  }

  /// Once per step: check on every parked commit. Completed ones are acked
  /// into the model; ones whose node died became indeterminate; a failed
  /// group force fail-stops the node (the device lied about durability).
  void PollParked() {
    if (parked_.empty()) return;
    std::vector<ParkedTxn> keep;
    for (ParkedTxn& p : parked_) {
      Node* n = cluster_->node(p.node);
      if (n == nullptr || n->state() != NodeState::kUp) {
        MoveToPending(p, "crashed-while-parked");
        continue;
      }
      Result<bool> durable = n->PollCommit(p.txn);
      if (!durable.ok()) {
        MoveToPending(p, "group-force-failed");
        CrashActor(p.node, "group-force-failed");
        continue;
      }
      if (*durable) {
        AckParked(p);
      } else {
        keep.push_back(std::move(p));
      }
    }
    parked_ = std::move(keep);
  }

  /// Settles every parked commit before a verification phase: leads the
  /// group force on live nodes, hands crashed nodes' parked commits to the
  /// pending (indeterminate) machinery. Leaves nothing parked.
  void DrainParked(const char* why) {
    if (parked_.empty()) return;
    std::vector<ParkedTxn> parked = std::move(parked_);
    parked_.clear();
    for (ParkedTxn& p : parked) {
      Node* n = cluster_->node(p.node);
      if (n == nullptr || n->state() != NodeState::kUp) {
        MoveToPending(p, why);
        continue;
      }
      Status st = n->FlushCommitGroup();
      if (!st.ok()) {
        MoveToPending(p, "group-force-failed");
        CrashActor(p.node, "group-force-failed");
        continue;
      }
      Result<bool> durable = n->PollCommit(p.txn);
      if (durable.ok() && *durable) {
        AckParked(p);
      } else {
        MoveToPending(p, why);
        CrashActor(p.node, "group-commit-stuck");
      }
    }
  }

  // --- Restart + the four invariants ------------------------------------

  void DoRestartAll() {
    // Group commits still parked on live nodes are forced through now;
    // ones on crashed nodes become indeterminate and are resolved after
    // the restart below. Verification needs a settled model.
    DrainParked("restart-while-parked");
    if (!failure_.empty()) return;
    // Faults quiesce during repair: the torture contract is that recovery
    // runs on honest hardware (fail-stop, not byzantine).
    injector_.set_enabled(false);
    injector_.HealAllLinks();

    // At most one crash-during-recovery event is armed per repair pass: a
    // seeded victim dies at a seeded phase boundary, its partial restart is
    // abandoned (fail-stop), and a later round must re-enter recovery from
    // scratch. The loop doubles as the liveness check — repair has to
    // converge to every node up within a bounded number of rounds.
    bool arm = options_.crash_during_recovery ||
               rng_.Uniform(100) < 10;
    int round = 0;
    for (;;) {
      std::vector<NodeId> down;
      for (NodeId id : cluster_->NodeIds()) {
        if (cluster_->node(id)->state() == NodeState::kDown) {
          down.push_back(id);
        }
      }
      if (down.empty()) break;
      if (++round > 8) {
        Fail("restart did not converge after 8 rounds");
        return;
      }
      if (arm) {
        arm = false;
        NodeId victim = down[rng_.Uniform(down.size())];
        // kFinished is excluded: by then the node is up and this would be
        // an ordinary crash, not a crash *during* recovery.
        int boundary = static_cast<int>(rng_.Uniform(3));
        cluster_->set_recovery_phase_hook(
            [this, victim, boundary](NodeId id, RecoveryPhase phase) {
              if (id != victim || static_cast<int>(phase) != boundary) return;
              if (cluster_->CrashNode(id).ok()) {
                ++report_.crashes;
                ++report_.recovery_crashes;
                Event("recovery-crash node=" + std::to_string(id) +
                      " phase=" + std::to_string(boundary));
              }
            });
      }
      // Elastic: an endpoint crash can leave a page fenced in doubt at a
      // *live* source until its target answers a HandoffQuery. A node
      // restarting this round may need a lock on that page to reconstruct
      // its retained state, so settle what is already settleable first —
      // each round brings more endpoints up, and the convergence bound
      // still applies.
      if (options_.elastic) {
        Status rh = cluster_->ResolveHandoffs();
        if (!rh.ok()) {
          Fail("ResolveHandoffs: " + rh.ToString());
          return;
        }
      }
      Status st = cluster_->RestartNodes(down);
      cluster_->set_recovery_phase_hook(nullptr);
      if (!st.ok()) {
        if (options_.elastic && st.IsBusy()) {
          // A fence held by a still-unresolved handoff blocked this
          // round's recovery; the next round resolves further and retries.
          Event("restart-blocked round=" + std::to_string(round) + " " +
                st.ToString());
          continue;
        }
        Fail("RestartNodes: " + st.ToString());
        return;
      }
      std::string who;
      std::size_t recovered = 0;
      for (NodeId id : down) {
        who += (who.empty() ? "" : ",") + std::to_string(id);
        if (cluster_->node(id)->state() == NodeState::kUp) ++recovered;
      }
      report_.restarts += recovered;
      Event("restart round=" + std::to_string(round) + " nodes=" + who +
            " recovered=" + std::to_string(recovered));
    }
    HarvestPoison();
    // Elastic mode: settle every in-flight handoff now that all nodes are
    // up with links healed — in-doubt pages unfence (the target either
    // durably adopted or the handoff aborts), so the verification below
    // never reads into a fence — then hold the exactly-one-owner claim
    // invariant across every durable ledger.
    if (options_.elastic) {
      Status rh = cluster_->ResolveHandoffs();
      if (!rh.ok()) {
        Fail("ResolveHandoffs: " + rh.ToString());
        return;
      }
      CheckOwnershipClaims("post-restart");
      if (!failure_.empty()) return;
    }
    ResolvePending();
    if (failure_.empty()) CheckPsnConsistency("post-restart");
    if (failure_.empty() && !rids_.empty()) {
      // Hammer mode samples the post-restart verification: reading every
      // record would touch every page and drain the whole restore backlog
      // on the spot, leaving nothing mid-restore for later crashes to land
      // on. The final phase still verifies everything.
      VerifyModel(RandomUpNode(), "post-restart",
                  /*sampled=*/options_.hammer_restore);
    }
    injector_.set_enabled(true);
  }

  /// Reads the committed state of `rid` with faults quiesced. Returns
  /// nullopt-wrapped value; sets *ok=false (and fails the run) on any error
  /// other than NotFound.
  std::optional<std::string> ReadCommitted(Node* n, RecordId rid, bool* ok) {
    *ok = false;
    Result<TxnId> begun = n->Begin();
    if (!begun.ok()) {
      Fail("resolve Begin: " + begun.status().ToString());
      return std::nullopt;
    }
    Result<std::string> got = n->Read(*begun, rid);
    std::optional<std::string> value;
    if (got.ok()) {
      value = *got;
    } else if (!got.status().IsNotFound()) {
      Fail("resolve Read " + rid.ToString() + ": " + got.status().ToString());
      (void)n->Abort(*begun);
      return std::nullopt;
    }
    Status done = n->Commit(*begun);
    if (!done.ok()) {
      Fail("resolve Commit: " + done.ToString());
      return std::nullopt;
    }
    *ok = true;
    return value;
  }

  /// Invariants 1+2 for interrupted commits: recovery must have made each
  /// pending transaction land atomically — all staged values visible
  /// (committed) or none (rolled back). Picks the branch from the first
  /// record, then holds the rest to it.
  void ResolvePending() {
    std::vector<PendingTxn> pending = std::move(pending_);
    pending_.clear();
    for (const PendingTxn& p : pending) {
      Node* n = cluster_->node(p.node);
      if (n == nullptr || n->state() != NodeState::kUp) {
        Fail("resolve: node " + std::to_string(p.node) + " not up");
        return;
      }
      // A media failure may have fenced some (or all) of the touched pages:
      // those records cannot be read back, so the verdict must come from a
      // record on a healthy page. If none exists the transaction's fate is
      // unknowable forever — its records are cursed (never verified again),
      // which is exactly the contract: a fenced page refuses service rather
      // than pick a side.
      const StagedWrite* first = nullptr;
      for (const StagedWrite& w : p.writes) {
        if (!poisoned_.contains(w.rid.page)) {
          first = &w;
          break;
        }
      }
      if (first == nullptr) {
        for (const StagedWrite& w : p.writes) cursed_.insert(w.rid);
        Event("resolve node=" + std::to_string(p.node) + " cursed");
        continue;
      }
      bool ok = false;
      std::optional<std::string> got = ReadCommitted(n, first->rid, &ok);
      if (!ok) return;
      bool committed;
      if (got == first->staged) {
        committed = true;
      } else if (got == first->prior) {
        committed = false;
      } else {
        Fail("resolve " + first->rid.ToString() + ": got " + OptStr(got) +
             ", neither staged " + OptStr(first->staged) + " nor prior " +
             OptStr(first->prior));
        return;
      }
      for (const StagedWrite& w : p.writes) {
        if (&w == first || poisoned_.contains(w.rid.page)) continue;
        std::optional<std::string> expect = committed ? w.staged : w.prior;
        std::optional<std::string> val = ReadCommitted(n, w.rid, &ok);
        if (!ok) return;
        if (val != expect) {
          Fail("atomicity: " + w.rid.ToString() + " got " + OptStr(val) +
               " but txn " + (committed ? "committed" : "aborted") +
               " elsewhere (expected " + OptStr(expect) + ")");
          return;
        }
        ++report_.reads_checked;
      }
      if (committed) {
        for (const StagedWrite& w : p.writes) {
          model_[w.rid] = w.staged;
          if (known_.insert(w.rid).second) rids_.push_back(w.rid);
        }
      }
      Event(std::string("resolve node=") + std::to_string(p.node) +
            (committed ? " committed" : " rolled-back"));
    }
  }

  /// Invariants 1+2 in bulk: every record the model knows reads back at its
  /// committed value (or NotFound if deleted) from `reader`.
  void VerifyModel(NodeId reader, const char* tag, bool sampled = false) {
    Node* n = cluster_->node(reader);
    Result<TxnId> begun = n->Begin();
    if (!begun.ok()) {
      Fail(std::string(tag) + " verify Begin: " + begun.status().ToString());
      return;
    }
    TxnId txn = *begun;
    for (RecordId rid : rids_) {
      if (sampled && rng_.Uniform(4) != 0) continue;
      if (Unverifiable(rid)) continue;
      std::optional<std::string> expected = ModelValue(rid);
      Result<std::string> got = n->Read(txn, rid);
      if (got.ok()) {
        if (!expected || *expected != *got) {
          Fail(std::string(tag) + " verify from node " +
               std::to_string(reader) + ": " + rid.ToString() + " got \"" +
               *got + "\" expected " + OptStr(expected));
          break;
        }
      } else if (got.status().IsNotFound()) {
        if (expected) {
          Fail(std::string(tag) + " verify from node " +
               std::to_string(reader) + ": " + rid.ToString() +
               " lost, expected " + OptStr(expected));
          break;
        }
      } else {
        Fail(std::string(tag) + " verify Read " + rid.ToString() + ": " +
             got.status().ToString());
        break;
      }
      ++report_.reads_checked;
    }
    Status done = failure_.empty() ? n->Commit(txn) : n->Abort(txn);
    if (failure_.empty() && !done.ok()) {
      Fail(std::string(tag) + " verify Commit: " + done.ToString());
    }
  }

  /// Invariant 3. Runs only when every node is up and recovery is done:
  /// per page, the newest visible PSN (max over all cached copies and the
  /// disk version) never regresses across the run — crashes and recoveries
  /// must never lose updates — and the disk version must be readable
  /// whenever no surviving cache holds the page dirty. Per-copy PSN
  /// equality is deliberately NOT asserted: the owner legitimately keeps a
  /// stale clean "home copy" after being called back, and undo CLRs
  /// advance one copy past the others until the next transfer.
  void CheckPsnConsistency(const char* tag) {
    for (PageId pid : pages_) {
      // A fenced page legitimately sits at a pre-loss PSN (the base image
      // media recovery could not replay forward); its watermark resumes if
      // a later rebuild un-poisons it.
      if (poisoned_.contains(pid)) continue;
      // A page still queued for instant restore sits unreadable on disk by
      // design until its on-demand rebuild; its watermark resumes once the
      // rebuild lands (and must not have regressed then).
      Node* owner_probe = cluster_->node(cluster_->CurrentOwner(pid));
      if (owner_probe != nullptr && owner_probe->IsRestoring(pid)) continue;
      Psn max_psn = 0;
      bool any_copy = false;
      bool any_dirty = false;
      for (NodeId id : cluster_->NodeIds()) {
        Node* n = cluster_->node(id);
        if (n->state() != NodeState::kUp) continue;
        const Page* p = n->pool().Peek(pid);
        if (p == nullptr) continue;
        any_copy = true;
        max_psn = std::max(max_psn, p->psn());
        if (n->pool().IsDirty(pid)) any_dirty = true;
      }
      Psn disk_psn = 0;
      bool have_disk = false;
      Node* owner = cluster_->node(cluster_->CurrentOwner(pid));
      if (owner != nullptr && owner->state() == NodeState::kUp) {
        Result<Psn> dr = owner->DiskPsn(pid);
        if (dr.ok()) {
          disk_psn = *dr;
          have_disk = true;
        } else if (!any_dirty) {
          Fail(std::string(tag) + " " + pid.ToString() +
               ": disk version unreadable with no dirty cached copy: " +
               dr.status().ToString());
          return;
        }
      }
      Psn effective = std::max(max_psn, disk_psn);
      if (!any_copy && !have_disk) continue;  // Owner down: nothing visible.
      auto [it, fresh] = watermark_.try_emplace(pid, effective);
      if (!fresh) {
        if (effective < it->second) {
          Fail(std::string(tag) + " " + pid.ToString() + ": psn regressed " +
               std::to_string(it->second) + " -> " +
               std::to_string(effective));
          return;
        }
        it->second = effective;
      }
    }
    Event(std::string("psn-check ") + tag + " ok");
  }

  /// Invariant 4. Ground truth: an independent forward scan of each node's
  /// log, coalescing update/CLR/logical records into transaction runs
  /// exactly as Section 2.3.4 specifies, minus the runs the redo skip rule
  /// removes. It must agree with what HandleBuildPsnList
  /// reports in full-history mode, and the merged cross-node schedule must
  /// be strictly ascending with adjacent runs on different nodes.
  void CheckPsnListReconstruction() {
    std::map<PageId, std::size_t> index;
    for (std::size_t i = 0; i < pages_.size(); ++i) index[pages_[i]] = i;
    // lists[page index][node] = that node's full-history PSN list.
    std::vector<std::map<NodeId, std::vector<PsnListEntry>>> lists(
        pages_.size());

    for (NodeId id : cluster_->NodeIds()) {
      Node* n = cluster_->node(id);
      std::vector<std::vector<PsnListEntry>> truth(pages_.size());
      std::vector<std::vector<TxnId>> truth_txns(pages_.size());
      std::map<PageId, TxnId> last_txn;
      std::set<TxnId> logical_txns;
      std::set<TxnId> resolved_txns;
      LogCursor cursor(&n->log(), LogManager::first_lsn());
      LogRecord rec;
      Lsn lsn = kNullLsn;
      Status scan;
      while (cursor.Next(&rec, &lsn, &scan)) {
        if (rec.type == LogRecordType::kCommit ||
            rec.type == LogRecordType::kUndoBackfill) {
          resolved_txns.insert(rec.txn);
          continue;
        }
        if (rec.type != LogRecordType::kUpdate &&
            rec.type != LogRecordType::kClr &&
            rec.type != LogRecordType::kLogicalUpdate) {
          continue;
        }
        if (rec.type == LogRecordType::kLogicalUpdate) {
          logical_txns.insert(rec.txn);
        }
        auto it = index.find(rec.page);
        if (it == index.end()) continue;
        auto lt = last_txn.find(rec.page);
        if (lt == last_txn.end() || lt->second != rec.txn) {
          truth[it->second].push_back(PsnListEntry{rec.psn_before, lsn});
          truth_txns[it->second].push_back(rec.txn);
          last_txn[rec.page] = rec.txn;
        }
      }
      if (!scan.ok()) {
        Fail("psn-list scan node " + std::to_string(id) + ": " +
             scan.ToString());
        return;
      }
      // Redo skip rule, mirrored (docs/PROTOCOLS.md "Redo skip rule"):
      // runs of a transaction that wrote logical records but never reached
      // a commit nor an UNDO_BACKFILL are dropped from the lists — their
      // effects were volatile-only and recovery must not replay them. The
      // builder additionally exempts live transactions; every harness
      // transaction is closed by the time this check runs, so the mirror
      // needs no such clause.
      std::set<TxnId> skip;
      for (TxnId t : logical_txns) {
        if (resolved_txns.count(t) == 0) skip.insert(t);
      }
      if (!skip.empty()) {
        for (std::size_t i = 0; i < pages_.size(); ++i) {
          auto& list = truth[i];
          std::size_t kept = 0;
          for (std::size_t j = 0; j < list.size(); ++j) {
            if (skip.count(truth_txns[i][j]) == 0) list[kept++] = list[j];
          }
          list.resize(kept);
        }
      }

      PsnListReply reply;
      Status st = n->HandleBuildPsnList(id, pages_, /*full_history=*/true,
                                        &reply);
      if (!st.ok()) {
        Fail("BuildPsnList node " + std::to_string(id) + ": " + st.ToString());
        return;
      }
      for (std::size_t i = 0; i < pages_.size(); ++i) {
        const auto& got = reply.per_page[i];
        const auto& want = truth[i];
        if (got.size() != want.size()) {
          Fail("psn-list node " + std::to_string(id) + " " +
               pages_[i].ToString() + ": " + std::to_string(got.size()) +
               " runs reported, ground truth has " +
               std::to_string(want.size()));
          return;
        }
        for (std::size_t k = 0; k < got.size(); ++k) {
          if (got[k].psn != want[k].psn ||
              got[k].start_lsn != want[k].start_lsn) {
            Fail("psn-list node " + std::to_string(id) + " " +
                 pages_[i].ToString() + " run " + std::to_string(k) +
                 ": reported (psn=" + std::to_string(got[k].psn) +
                 ", lsn=" + std::to_string(got[k].start_lsn) +
                 ") truth (psn=" + std::to_string(want[k].psn) +
                 ", lsn=" + std::to_string(want[k].start_lsn) + ")");
            return;
          }
        }
        if (!want.empty()) lists[i][id] = want;
      }
    }

    std::size_t total_runs = 0;
    for (std::size_t i = 0; i < pages_.size(); ++i) {
      std::vector<RecoveryRun> merged = MergePsnLists(lists[i]);
      total_runs += merged.size();
      for (std::size_t k = 0; k + 1 < merged.size(); ++k) {
        if (merged[k].psn >= merged[k + 1].psn) {
          Fail("merged schedule for " + pages_[i].ToString() +
               " not strictly ascending at run " + std::to_string(k));
          return;
        }
        // After a log-device loss one node's runs are missing from the
        // middle of the history, so two surviving runs of one node can
        // legitimately sit adjacent; only the ascending check still holds.
        if (!log_loss_occurred_ && merged[k].node == merged[k + 1].node) {
          Fail("merged schedule for " + pages_[i].ToString() +
               " has uncoalesced adjacent runs of node " +
               std::to_string(merged[k].node));
          return;
        }
      }
    }
    Event("psn-list-check ok runs=" + std::to_string(total_runs));
  }

  // --- Final phase ------------------------------------------------------

  void FinalPhase() {
    injector_.set_enabled(false);
    injector_.HealAllLinks();
    for (NodeId id : injector_.TakeFiredNodes()) {
      CrashActor(id, "io-fault-fired");
      if (!failure_.empty()) return;
    }
    DrainParked("final-drain");
    if (!failure_.empty()) return;
    // Bring stragglers back and settle indeterminate commits while the
    // survivors' caches are still warm.
    DoRestartAll();
    injector_.set_enabled(false);
    if (!failure_.empty()) return;

    // The big hammer: lose every cache at once, then recover the whole
    // cluster jointly (Section 2.4) and check everything.
    for (NodeId id : cluster_->NodeIds()) {
      CrashActor(id, "final");
      if (!failure_.empty()) return;
    }
    Status st = cluster_->RestartNodes(cluster_->NodeIds());
    if (!st.ok()) {
      Fail("final RestartNodes: " + st.ToString());
      return;
    }
    report_.restarts += cluster_->NodeIds().size();
    Event("final restart");
    HarvestPoison();
    // Elastic mode: the joint recovery must have re-entered every handoff
    // the run left interrupted; after one live resolution pass, exactly
    // one durable owner claim per page, cluster-wide.
    if (options_.elastic) {
      Status rh = cluster_->ResolveHandoffs();
      if (!rh.ok()) {
        Fail("final ResolveHandoffs: " + rh.ToString());
        return;
      }
      CheckOwnershipClaims("final");
      if (!failure_.empty()) return;
    }

    // Hammer mode: drain every restore backlog before the full
    // verification, then hold the exit invariants — no plan left pending
    // and the durable restore ledger empty on every node. With all nodes
    // up and faults off, a rebuild that still can't make progress is a
    // bug, not bad luck.
    if (options_.hammer_restore) {
      for (NodeId id : cluster_->NodeIds()) {
        Node* n = cluster_->node(id);
        std::size_t pending = n->RestorePendingCount();
        while (pending != 0) {
          std::size_t after = n->SweepRestore(pending);
          if (after >= pending) break;  // No progress: sweep is blocked.
          pending = after;
        }
        if (n->RestorePendingCount() != 0) {
          Fail("restore drain: node " + std::to_string(id) + " stuck with " +
               std::to_string(n->RestorePendingCount()) + " pages pending");
          return;
        }
        if (!n->restore().LedgerEntries().empty()) {
          Fail("restore drain: node " + std::to_string(id) +
               " finished with a non-empty restore ledger");
          return;
        }
      }
      // Draining may have fenced pages for real (permanent poison verdicts
      // reached during rebuild); refresh the model's view before verifying.
      HarvestPoison();
      Event("restore-drain ok");
    }

    for (NodeId id : cluster_->NodeIds()) {
      VerifyModel(id, "final");
      if (!failure_.empty()) return;
    }
    for (NodeId id : cluster_->NodeIds()) {
      Status inv = cluster_->node(id)->CheckInvariants(/*deep=*/true);
      if (!inv.ok()) {
        Fail("final deep invariants node " + std::to_string(id) + ": " +
             inv.ToString());
        return;
      }
    }
    CheckPsnConsistency("final");
    if (!failure_.empty()) return;
    CheckPsnListReconstruction();
    if (!failure_.empty()) return;

    // Invariant 6 (adaptive mode): logical records replay to the same page
    // bytes. Snapshot every recoverable page as the first joint recovery
    // rebuilt it, crash the whole cluster a second time, and require the
    // second recovery to reconstruct identical images, PSN and body both.
    // (A live cache is NOT a valid reference — aborted adaptive
    // transactions bump PSNs and shuffle slots in memory without leaving
    // replayable records — but two recoveries read the same log, so any
    // divergence between them is a replay-determinism bug: a logical
    // record that redoes differently from the physical application it
    // stands in for.)
    if (options_.adaptive) {
      std::map<PageId, std::string> first_images;
      for (const PageId& pid : pages_) {
        if (poisoned_.contains(pid)) continue;
        Result<std::string> img =
            cluster_->node(cluster_->CurrentOwner(pid))->DebugPageImage(pid);
        // Unreadable (fenced mid-harvest): no fidelity claim for this page.
        if (img.ok()) first_images[pid] = std::move(*img);
      }
      for (NodeId id : cluster_->NodeIds()) {
        CrashActor(id, "fidelity");
        if (!failure_.empty()) return;
      }
      Status again = cluster_->RestartNodes(cluster_->NodeIds());
      if (!again.ok()) {
        Fail("fidelity RestartNodes: " + again.ToString());
        return;
      }
      report_.restarts += cluster_->NodeIds().size();
      HarvestPoison();
      std::size_t checked = 0;
      for (const auto& [pid, want] : first_images) {
        if (poisoned_.contains(pid)) continue;
        Result<std::string> got =
            cluster_->node(cluster_->CurrentOwner(pid))->DebugPageImage(pid);
        if (!got.ok()) {
          Fail("redo fidelity: " + pid.ToString() +
               " unreadable after second recovery: " + got.status().ToString());
          return;
        }
        if (*got != want) {
          Fail("redo fidelity: " + pid.ToString() +
               " bytes differ between two recoveries of one log");
          return;
        }
        ++checked;
      }
      Event("redo-fidelity ok pages=" + std::to_string(checked));
    }

    // Invariant 5 (media mode): the archive pair must be self-consistent
    // on every node, and every record on a fenced page must refuse to read
    // — Corruption, never silent stale data.
    if (MediaMode()) {
      for (NodeId id : cluster_->NodeIds()) {
        Status ar = cluster_->node(id)->CheckArchiveConsistency();
        if (!ar.ok()) {
          Fail("archive consistency node " + std::to_string(id) + ": " +
               ar.ToString());
          return;
        }
      }
      Event("archive-check ok");
      VerifyPoisonFencing();
    }
  }

  /// Every known record on a currently fenced page must read back an error
  /// (the fence), with all caches cold after the final full restart — a
  /// successful read here would be silent stale data, the one outcome media
  /// recovery may never produce.
  void VerifyPoisonFencing() {
    if (poisoned_.empty()) return;
    NodeId reader = RandomUpNode();
    Node* n = cluster_->node(reader);
    Result<TxnId> begun = n->Begin();
    if (!begun.ok()) {
      Fail("fence Begin: " + begun.status().ToString());
      return;
    }
    std::uint64_t fenced = 0;
    for (RecordId rid : rids_) {
      if (!poisoned_.contains(rid.page)) continue;
      Result<std::string> got = n->Read(*begun, rid);
      if (got.ok()) {
        Fail("poison fence: " + rid.ToString() + " read \"" + *got +
             "\" from a page fenced as unrecoverable");
        break;
      }
      if (!got.status().IsCorruption()) {
        Fail("poison fence: " + rid.ToString() + " failed with " +
             got.status().ToString() + ", expected Corruption");
        break;
      }
      ++fenced;
    }
    (void)n->Abort(*begun);
    if (failure_.empty()) Event("poison-fence ok=" + std::to_string(fenced));
  }

  // --- State ------------------------------------------------------------

  TortureOptions options_;
  Random rng_;
  FaultInjector injector_;
  TraceSink trace_;  ///< Outlives cluster_; every node emits into it.
  bool use_partitions_ = false;
  bool use_io_faults_ = false;

  std::string dir_;
  bool owns_dir_ = false;
  std::unique_ptr<Cluster> cluster_;

  /// Ground-truth committed state: rid -> value, nullopt = deleted.
  std::map<RecordId, std::optional<std::string>> model_;
  std::vector<RecordId> rids_;  ///< Stable pick order for the RNG.
  std::set<RecordId> known_;
  std::vector<PageId> pages_;
  std::vector<PendingTxn> pending_;
  std::vector<ParkedTxn> parked_;  ///< Group commits awaiting their ack.
  std::map<PageId, Psn> watermark_;  ///< Invariant 3: PSNs never regress.

  // Media mode (empty/false in healthy schedules):
  std::set<PageId> poisoned_;  ///< Pages currently fenced as unrecoverable.
  std::set<RecordId> cursed_;  ///< Records whose pending fate was fenced off.
  bool log_loss_occurred_ = false;  ///< Any log device destroyed this run.

  std::uint64_t value_seq_ = 0;
  std::uint64_t hash_ = kFnvOffset;
  std::string failure_;
  TortureReport report_;
};

}  // namespace
}  // namespace clog

namespace clog {

std::string TortureReport::Summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " verdict=" << (ok ? "PASS" : "FAIL")
      << " hash=" << std::hex << schedule_hash << " trace=" << trace_hash
      << std::dec
      << " committed=" << txns_committed << " aborted=" << txns_aborted
      << " indeterminate=" << txns_indeterminate
      << " parked=" << txns_parked << " crashes=" << crashes
      << " restarts=" << restarts << " recovery_crashes=" << recovery_crashes
      << " partitions=" << partitions
      << " reads=" << reads_checked
      << " rpc{retries=" << rpc_retries << " ok=" << rpc_retry_success
      << " exhausted=" << rpc_retry_exhausted << " probes=" << hb_probes
      << "} faults{drop=" << faults.dropped_msgs
      << " delay=" << faults.delayed_msgs << " dup=" << faults.duplicated_msgs
      << " blocked=" << faults.blocked_msgs << " torn_tail=" << faults.torn_tails
      << " torn_page=" << faults.torn_page_writes
      << " failed_write=" << faults.failed_page_writes
      << " failed_sync=" << faults.failed_syncs << "}";
  if (device_losses != 0 || pages_poisoned != 0) {
    out << " media{losses=" << device_losses << " log=" << log_losses
        << " read_faults=" << faults.failed_page_reads
        << " poisoned=" << pages_poisoned << "}";
  }
  if (handoffs != 0 || handoff_crashes != 0 || joins != 0 || leaves != 0) {
    out << " elastic{handoffs=" << handoffs
        << " crashes=" << handoff_crashes << " joins=" << joins
        << " leaves=" << leaves << "}";
  }
  if (restore_planned != 0) {
    out << " restore{planned=" << restore_planned
        << " peer=" << restore_from_peer << " archive=" << restore_from_archive
        << " seed=" << restore_from_seed
        << " durable=" << restore_already_durable << "}";
  }
  if (!ok) out << " failure=\"" << failure << "\"";
  return out.str();
}

TortureReport RunTortureSchedule(const TortureOptions& options) {
  TortureRun run(options);
  return run.Run();
}

}  // namespace clog
