#ifndef CLOG_FAULT_FAULT_INJECTOR_H_
#define CLOG_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"

/// \file
/// Deterministic fault-injection layer. One FaultInjector is shared by a
/// whole cluster and consulted at the three I/O choke points:
///
///  - Network (every accounted wire message): drop the request before it
///    reaches the peer, charge extra latency, duplicate idempotent
///    notifications, and partition links.
///  - DiskManager (page writes / fdatasync): fail a write cleanly, tear it
///    (persist only the first half of the page), or fail a sync.
///  - LogManager (Abandon / Flush): persist a torn prefix of the buffered
///    log tail when a crash abandons it, and fail the fsync of a flush.
///
/// Every decision is drawn from one seeded PRNG, so a whole cluster history
/// — workload, faults, crashes, recoveries — replays exactly from a single
/// uint64 seed. Probabilistic faults only fire while `enabled()`; the
/// torture harness disables the injector around restart recovery (faults
/// quiesce before repair, the standard torture-harness contract).
///
/// Fault semantics are chosen so that no injected fault can violate the
/// system's correctness contract by construction:
///  - messages are dropped *before* dispatch (the peer never sees them), so
///    a drop is indistinguishable from the peer being down — a condition
///    every caller already handles;
///  - only one-way idempotent notices are duplicated;
///  - disk and log write faults fail *before* any byte reaches the file
///    (or tear it in a way recovery treats as a crash artifact), and the
///    harness fail-stops the node the fault fired on, which is the
///    standard model for I/O errors (think PostgreSQL's fsync panic).

namespace clog {

/// Probabilities of the stochastic faults. One-shot disk/log-write faults
/// are armed explicitly instead (see ArmIoFault), because they require the
/// harness to fail-stop the victim node when they fire.
struct FaultConfig {
  // --- Network (checked per wire message while enabled) ---
  double net_drop_p = 0.0;       ///< Request lost before dispatch.
  double net_delay_p = 0.0;      ///< Extra latency charged to the clock.
  std::uint64_t net_delay_min_ns = 100'000;
  std::uint64_t net_delay_max_ns = 5'000'000;
  double net_duplicate_p = 0.0;  ///< Idempotent notices delivered twice.

  // --- Log tail (checked when a crash abandons the buffered tail) ---
  double torn_tail_p = 0.0;          ///< Persist a prefix of the lost tail.
  double torn_tail_corrupt_p = 0.5;  ///< ...and flip a byte of the prefix.
};

/// One-shot I/O faults armed on a specific node. The fault fires on that
/// node's next matching I/O and is then cleared; the fired node is recorded
/// so a harness can fail-stop it.
enum class IoFault : std::uint8_t {
  kNone = 0,
  kFailPageWrite,  ///< pwrite fails; nothing reaches the file.
  kTornPageWrite,  ///< Only the first half of the page reaches the file.
  kFailDiskSync,   ///< DiskManager::Sync fails.
  kFailLogSync,    ///< LogManager::Flush fails before writing anything.
  kFailPageRead,   ///< pread fails once, transiently; a retry succeeds.
};

/// Whole-device loss, consumed at the next crash of the armed node (media
/// failure happens *with* the crash: a live process never observes its own
/// device vanishing mid-operation under the fail-stop model). The harness
/// arms one, crashes the node, and restart recovery finds the file gone.
enum class DeviceFault : std::uint8_t {
  kNone = 0,
  kDestroyDataFile,  ///< node.db truncated to nothing at the crash point.
  kDestroyLogFile,   ///< node.log (and its master pointer) destroyed.
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultConfig config = {});

  std::uint64_t seed() const { return seed_; }
  const FaultConfig& config() const { return config_; }
  void set_config(const FaultConfig& config) { config_ = config; }

  /// Master switch. While disabled every hook reports "no fault" without
  /// consuming randomness, and partitions do not block links.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- Network hooks (called by Network) --------------------------------

  /// True if the link between `a` and `b` is partitioned (symmetric).
  bool LinkBlocked(NodeId a, NodeId b) const;

  /// Called by Network when a partition refused a message (counters only).
  void NoteBlockedMessage() { ++counters_.blocked_msgs; }

  /// True if this request should be lost before dispatch.
  bool DropMessage(NodeId from, NodeId to);

  /// Extra nanoseconds of latency for this message; 0 = none.
  std::uint64_t DelayNanos(NodeId from, NodeId to);

  /// True if this (idempotent, one-way) notice should be delivered twice.
  bool DuplicateNotice(NodeId from, NodeId to);

  // --- Partitions (explicit state set by the harness) -------------------

  void BlockLink(NodeId a, NodeId b);
  void HealLink(NodeId a, NodeId b);
  void HealAllLinks();
  bool AnyLinkBlocked() const { return !blocked_links_.empty(); }

  // --- Disk / log hooks -------------------------------------------------

  /// Arms a one-shot I/O fault on `node`.
  void ArmIoFault(NodeId node, IoFault fault);

  /// Called by DiskManager before a page write; returns and clears any
  /// armed write fault for `node`.
  IoFault OnPageWrite(NodeId node);

  /// Called by DiskManager before a page read; true = fail this read
  /// (clears the arm, so the caller's single retry succeeds). Transient by
  /// design: the node is NOT recorded as fired — a retried read is not a
  /// lying device, so fail-stop does not apply.
  bool OnPageRead(NodeId node);

  /// Called by DiskManager before fdatasync; true = fail (clears the arm).
  bool OnDiskSync(NodeId node);

  /// Called by LogManager::Flush before writing; true = fail the force
  /// (clears the arm). Nothing reaches the file, so the flushed records
  /// were never durable — exactly a lost log tail.
  bool OnLogSync(NodeId node);

  /// Called by LogManager::Abandon with the size of the buffered (never
  /// acknowledged) tail about to be lost in a crash.
  struct TornTail {
    bool tear = false;            ///< Persist `keep_bytes` of the tail.
    std::size_t keep_bytes = 0;   ///< Prefix length to write to the file.
    bool corrupt_last = false;    ///< Flip a byte at the end of the prefix.
  };
  TornTail OnAbandon(NodeId node, std::size_t buffered_bytes);

  // --- Media failure (device loss) --------------------------------------

  /// Arms a device loss on `node`, consumed at its next crash.
  void ArmDeviceFault(NodeId node, DeviceFault fault);

  /// Called by Node::Crash after volatile state is dropped and files are
  /// closed; returns and clears the armed device fault for `node`. Fires
  /// even while the injector is disabled: a device armed during the fault
  /// window is already doomed, quiescing faults for recovery must not
  /// un-destroy it.
  DeviceFault OnCrash(NodeId node);

  // --- Fail-stop bookkeeping --------------------------------------------

  /// Nodes on which a one-shot I/O fault has fired since the last call;
  /// clears the set. The harness crashes these (fail-stop on I/O error).
  std::vector<NodeId> TakeFiredNodes();
  bool HasFiredNodes() const { return !fired_nodes_.empty(); }

  // --- Counters (observability / reports) -------------------------------

  struct Counters {
    std::uint64_t dropped_msgs = 0;
    std::uint64_t delayed_msgs = 0;
    std::uint64_t duplicated_msgs = 0;
    std::uint64_t blocked_msgs = 0;   ///< Messages refused by a partition.
    std::uint64_t torn_tails = 0;
    std::uint64_t torn_page_writes = 0;
    std::uint64_t failed_page_writes = 0;
    std::uint64_t failed_syncs = 0;   ///< Disk and log syncs combined.
    std::uint64_t failed_page_reads = 0;  ///< Transient read faults fired.
    std::uint64_t data_devices_lost = 0;  ///< kDestroyDataFile consumed.
    std::uint64_t log_devices_lost = 0;   ///< kDestroyLogFile consumed.
  };
  const Counters& counters() const { return counters_; }

 private:
  std::uint64_t seed_;
  FaultConfig config_;
  bool enabled_ = true;
  Random rng_;

  std::set<std::pair<NodeId, NodeId>> blocked_links_;  ///< Normalized pairs.
  std::map<NodeId, IoFault> armed_;
  std::map<NodeId, DeviceFault> armed_device_;
  std::set<NodeId> fired_nodes_;
  Counters counters_;
};

}  // namespace clog

#endif  // CLOG_FAULT_FAULT_INJECTOR_H_
