#ifndef CLOG_BUFFER_DIRTY_PAGE_TABLE_H_
#define CLOG_BUFFER_DIRTY_PAGE_TABLE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

/// \file
/// The per-node Dirty Page Table exactly as specified in paper Section 2.2.
/// An entry tracks a page this node has modified whose updates may not yet
/// be in the disk version of the database:
///
///   PID      page id
///   PSN      page PSN the first time this node dirtied it
///   CurrPSN  page PSN after this node's last update
///   RedoLSN  LSN of the earliest local log record that may need redo
///
/// plus the Section 2.5 extension: when the node replaces dirty page P from
/// its cache, it remembers the current end of its log; when the owner later
/// reports P forced to disk, the entry's RedoLSN advances to that remembered
/// LSN (or the entry is dropped if P was not updated again since the
/// replacement).

namespace clog {

/// One DPT entry plus the bookkeeping for flush notifications.
struct DirtyPageInfo {
  Psn psn = 0;        ///< PSN at first dirty (paper field "PSN").
  Psn curr_psn = 0;   ///< PSN after last local update (paper "CurrPSN").
  Lsn redo_lsn = kNullLsn;  ///< Paper "RedoLSN".

  // Section 2.5 bookkeeping.
  Lsn replaced_end_lsn = kNullLsn;  ///< End-of-log remembered at replacement.
  Psn psn_at_replace = kInvalidPsn; ///< CurrPSN when last replaced.
  bool updated_since_replace = false;  ///< Dirtied again after replacement.
};

/// The table. Single-threaded like the rest of a node's volatile state; a
/// node crash simply destroys it (recovery rebuilds a superset by log scan).
class DirtyPageTable {
 public:
  /// Registers a first-dirty event: called when the node obtains an
  /// exclusive lock on `pid` and no entry exists (paper Section 2.2). The
  /// current end of the local log is conservatively taken as RedoLSN.
  void OnFirstDirty(PageId pid, Psn page_psn, Lsn log_end_lsn);

  /// Called after every logged update to `pid`; records the new PSN.
  void OnUpdate(PageId pid, Psn new_psn);

  /// Called when the dirty page is replaced from the cache and sent to the
  /// owner (or written in place). Remembers the log end for Section 2.5.
  void OnReplaced(PageId pid, Psn page_psn, Lsn log_end_lsn);

  /// Owner notification: the disk version of `pid` now has PSN
  /// `flushed_psn`. Drops the entry when the node's updates are all covered
  /// and the page was not re-dirtied; otherwise advances RedoLSN to the
  /// remembered end-of-log. Returns true if the entry was dropped.
  bool OnOwnerFlushed(PageId pid, Psn flushed_psn);

  /// Unconditionally removes the entry (e.g. local page forced to disk).
  void Remove(PageId pid);

  /// Drops every entry (used only by tests; a crash destroys the object).
  void Clear();

  bool Contains(PageId pid) const;
  const DirtyPageInfo* Find(PageId pid) const;
  DirtyPageInfo* FindMutable(PageId pid);
  std::size_t size() const { return table_.size(); }

  /// Minimum RedoLSN over all entries, or kNullLsn when the table is empty.
  /// The local log may only be reclaimed before this point (Section 2.5).
  Lsn MinRedoLsn() const;

  /// Page with the smallest RedoLSN (the victim Section 2.5 forces first).
  std::optional<PageId> MinRedoLsnPage() const;

  /// All entries ascending by RedoLSN (Section 2.5 victim order).
  std::vector<PageId> PagesByRedoLsn() const;

  /// All entries as wire/checkpoint form, optionally filtered to pages
  /// owned by `owner` (used by crashed-node recovery requests).
  std::vector<DptEntry> ToEntries(
      std::optional<NodeId> owner = std::nullopt) const;

  /// Installs an entry verbatim (checkpoint reload / recovery analysis).
  void Install(const DptEntry& e);

  /// Iteration support.
  const std::unordered_map<PageId, DirtyPageInfo>& entries() const {
    return table_;
  }

 private:
  std::unordered_map<PageId, DirtyPageInfo> table_;
};

}  // namespace clog

#endif  // CLOG_BUFFER_DIRTY_PAGE_TABLE_H_
