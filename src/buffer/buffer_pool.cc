#include "buffer/buffer_pool.h"

#include "trace/trace_sink.h"

namespace clog {

BufferPool::BufferPool(std::size_t capacity) : capacity_(capacity) {
  // The pool holds at most `capacity` frames (plus one transiently while a
  // victim is mid-eviction); sizing the table up front means the hot
  // Lookup/Insert path never pays a rehash storm as the pool warms.
  frames_.reserve(capacity_ + 1);
}

void BufferPool::SetEvictionHandler(EvictionHandler handler) {
  handler_ = std::move(handler);
}

Page* BufferPool::Lookup(PageId pid) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(pid);
  it->second.lru_pos = lru_.begin();
  return it->second.page.get();
}

bool BufferPool::Contains(PageId pid) const { return frames_.contains(pid); }

Result<Page*> BufferPool::Insert(PageId pid) {
  if (frames_.contains(pid)) {
    return Status::FailedPrecondition("page already cached: " +
                                      pid.ToString());
  }
  while (frames_.size() >= capacity_) {
    CLOG_RETURN_IF_ERROR(EvictOne());
  }
  Frame frame;
  frame.page = std::make_unique<Page>();
  lru_.push_front(pid);
  frame.lru_pos = lru_.begin();
  Page* raw = frame.page.get();
  frames_.emplace(pid, std::move(frame));
  return raw;
}

Status BufferPool::EvictOne() {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto fit = frames_.find(*it);
    if (fit != frames_.end() && fit->second.pins == 0 &&
        !fit->second.evicting) {
      return EvictFrame(*it);
    }
  }
  return Status::Busy("buffer pool: all frames pinned or mid-eviction");
}

Status BufferPool::EvictFrame(PageId pid) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) return Status::OK();
  if (it->second.evicting) {
    return Status::Busy("page mid-eviction: " + pid.ToString());
  }
  it->second.evicting = true;
  Status st = Status::OK();
  if (handler_) {
    st = handler_(pid, it->second.page.get(), it->second.dirty);
  }
  // The handler may have re-entered the pool: nested inserts rehash the
  // map (invalidating `it`) and nested drops may have removed this frame.
  it = frames_.find(pid);
  if (it == frames_.end()) return st;
  if (!st.ok()) {
    it->second.evicting = false;
    return st;
  }
  if (trace_ != nullptr) {
    trace_->Emit(trace_node_, TraceEventType::kPageEvict, pid.Pack(), 0,
                 it->second.dirty ? 1 : 0);
  }
  lru_.erase(it->second.lru_pos);
  frames_.erase(it);
  ++evictions_;
  return Status::OK();
}

Status BufferPool::Evict(PageId pid) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) {
    return Status::NotFound("page not cached: " + pid.ToString());
  }
  if (it->second.pins > 0) {
    return Status::Busy("page pinned: " + pid.ToString());
  }
  return EvictFrame(pid);
}

void BufferPool::Pin(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) ++it->second.pins;
}

void BufferPool::Unpin(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end() && it->second.pins > 0) --it->second.pins;
}

void BufferPool::MarkDirty(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) it->second.dirty = true;
}

void BufferPool::MarkClean(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) it->second.dirty = false;
}

bool BufferPool::IsDirty(PageId pid) const {
  auto it = frames_.find(pid);
  return it != frames_.end() && it->second.dirty;
}

void BufferPool::Drop(PageId pid) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) return;
  lru_.erase(it->second.lru_pos);
  frames_.erase(it);
}

void BufferPool::DropAll() {
  frames_.clear();
  lru_.clear();
}

std::vector<PageId> BufferPool::CachedPages() const {
  std::vector<PageId> out;
  out.reserve(frames_.size());
  for (const auto& [pid, _] : frames_) out.push_back(pid);
  return out;
}

std::vector<PageId> BufferPool::DirtyPages() const {
  std::vector<PageId> out;
  for (const auto& [pid, frame] : frames_) {
    if (frame.dirty) out.push_back(pid);
  }
  return out;
}

}  // namespace clog
