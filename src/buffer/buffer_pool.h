#ifndef CLOG_BUFFER_BUFFER_POOL_H_
#define CLOG_BUFFER_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

/// \file
/// Per-node buffer pool (node cache, paper Section 2.1). Policies follow
/// the paper exactly: steal (dirty pages with uncommitted updates may be
/// replaced) and no-force (commit does not write pages). What happens to a
/// replaced dirty page — write in place for locally owned pages, ship to the
/// owner node otherwise — is node policy, injected as the eviction handler.

namespace clog {

class TraceSink;

/// Fixed-capacity page cache with LRU replacement and pin counts.
class BufferPool {
 public:
  /// Called when a victim frame must leave the cache. `dirty` reflects the
  /// pool's dirty bit. The handler must complete whatever WAL flushing and
  /// write/ship the node's policy requires; returning non-OK aborts the
  /// eviction (and the insertion that triggered it).
  using EvictionHandler = std::function<Status(PageId, Page*, bool dirty)>;

  /// Creates a pool with `capacity` frames.
  explicit BufferPool(std::size_t capacity);

  /// Installs the eviction policy. Must be set before the pool fills.
  void SetEvictionHandler(EvictionHandler handler);

  /// Returns the cached frame for `pid`, or nullptr on miss. Refreshes LRU.
  Page* Lookup(PageId pid);

  /// True if `pid` is cached (no LRU effect).
  bool Contains(PageId pid) const;

  /// Read-only view of the cached frame, or nullptr on miss. No LRU effect;
  /// used by invariant checkers that must not perturb replacement order.
  const Page* Peek(PageId pid) const {
    auto it = frames_.find(pid);
    return it == frames_.end() ? nullptr : it->second.page.get();
  }

  /// Allocates a frame for `pid` (must not be cached), evicting the LRU
  /// unpinned victim if full. The returned frame's contents are undefined;
  /// the caller fills them (from disk, the owner, or Format).
  Result<Page*> Insert(PageId pid);

  /// Pins `pid` so it cannot be evicted while the caller works on it.
  void Pin(PageId pid);
  void Unpin(PageId pid);

  /// Marks / clears the dirty bit.
  void MarkDirty(PageId pid);
  void MarkClean(PageId pid);
  bool IsDirty(PageId pid) const;

  /// Removes `pid` without invoking the eviction handler (callback-release,
  /// page forced and dropped, recovery rewiring). No-op if absent.
  void Drop(PageId pid);

  /// Explicitly evicts `pid` through the eviction handler (Section 2.5 log
  /// space pressure evicts a specific page, not the LRU choice).
  Status Evict(PageId pid);

  /// Discards every frame without any handler calls: a node crash.
  void DropAll();

  /// Ids of all cached pages (used by recovery: "pages owned by N present
  /// in your cache").
  std::vector<PageId> CachedPages() const;

  /// Ids of all cached-and-dirty pages (checkpoint support).
  std::vector<PageId> DirtyPages() const;

  std::size_t size() const { return frames_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Counters for benchmarks.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Attaches a trace sink emitting PAGE_EVICT events as `node` (nullptr
  /// detaches). Not owned.
  void set_trace_sink(TraceSink* trace, NodeId node) {
    trace_ = trace;
    trace_node_ = node;
  }

 private:
  struct Frame {
    std::unique_ptr<Page> page;
    bool dirty = false;
    int pins = 0;
    /// Set while the eviction handler runs. The handler can re-enter the
    /// pool (shipping a dirty page installs the reply on the peer, whose
    /// own eviction may ship a page back here); a frame mid-eviction must
    /// not be picked as a victim again or two nodes bounce the same pages
    /// in unbounded mutual recursion.
    bool evicting = false;
    std::list<PageId>::iterator lru_pos;
  };

  /// Evicts the least recently used unpinned frame.
  Status EvictOne();
  Status EvictFrame(PageId pid);

  std::size_t capacity_;
  EvictionHandler handler_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  ///< Front = most recent.

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;

  TraceSink* trace_ = nullptr;
  NodeId trace_node_ = kInvalidNodeId;
};

}  // namespace clog

#endif  // CLOG_BUFFER_BUFFER_POOL_H_
