#include "buffer/dirty_page_table.h"

#include <algorithm>

namespace clog {

void DirtyPageTable::OnFirstDirty(PageId pid, Psn page_psn, Lsn log_end_lsn) {
  if (table_.contains(pid)) return;
  DirtyPageInfo info;
  info.psn = page_psn;
  info.curr_psn = page_psn;
  info.redo_lsn = log_end_lsn;
  table_.emplace(pid, info);
}

void DirtyPageTable::OnUpdate(PageId pid, Psn new_psn) {
  auto it = table_.find(pid);
  if (it == table_.end()) return;
  it->second.curr_psn = new_psn;
  it->second.updated_since_replace = true;
}

void DirtyPageTable::OnReplaced(PageId pid, Psn page_psn, Lsn log_end_lsn) {
  auto it = table_.find(pid);
  if (it == table_.end()) return;
  it->second.replaced_end_lsn = log_end_lsn;
  it->second.psn_at_replace = page_psn;
  it->second.updated_since_replace = false;
}

bool DirtyPageTable::OnOwnerFlushed(PageId pid, Psn flushed_psn) {
  auto it = table_.find(pid);
  if (it == table_.end()) return false;
  DirtyPageInfo& info = it->second;
  if (flushed_psn >= info.curr_psn) {
    // Every update this node made is reflected in the disk version: the
    // entry may be dropped (Section 2.2). A later re-dirtying re-adds it
    // when the transaction obtains the exclusive lock again.
    table_.erase(it);
    return true;
  }
  if (info.psn_at_replace != kInvalidPsn && flushed_psn >= info.psn_at_replace) {
    // The disk version covers at least our last shipped copy; updates made
    // before that replacement are durable, so RedoLSN advances to the
    // remembered end-of-log (Section 2.5).
    if (info.replaced_end_lsn != kNullLsn &&
        info.replaced_end_lsn > info.redo_lsn) {
      info.redo_lsn = info.replaced_end_lsn;
    }
  }
  return false;
}

void DirtyPageTable::Remove(PageId pid) { table_.erase(pid); }

void DirtyPageTable::Clear() { table_.clear(); }

bool DirtyPageTable::Contains(PageId pid) const { return table_.contains(pid); }

const DirtyPageInfo* DirtyPageTable::Find(PageId pid) const {
  auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

DirtyPageInfo* DirtyPageTable::FindMutable(PageId pid) {
  auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

Lsn DirtyPageTable::MinRedoLsn() const {
  Lsn min = kNullLsn;
  for (const auto& [_, info] : table_) {
    if (min == kNullLsn || info.redo_lsn < min) min = info.redo_lsn;
  }
  return min;
}

std::optional<PageId> DirtyPageTable::MinRedoLsnPage() const {
  std::optional<PageId> best;
  Lsn best_lsn = kNullLsn;
  for (const auto& [pid, info] : table_) {
    if (!best.has_value() || info.redo_lsn < best_lsn) {
      best = pid;
      best_lsn = info.redo_lsn;
    }
  }
  return best;
}

std::vector<PageId> DirtyPageTable::PagesByRedoLsn() const {
  std::vector<std::pair<Lsn, PageId>> order;
  order.reserve(table_.size());
  for (const auto& [pid, info] : table_) order.emplace_back(info.redo_lsn, pid);
  std::sort(order.begin(), order.end());
  std::vector<PageId> out;
  out.reserve(order.size());
  for (const auto& [_, pid] : order) out.push_back(pid);
  return out;
}

std::vector<DptEntry> DirtyPageTable::ToEntries(
    std::optional<NodeId> owner) const {
  std::vector<DptEntry> out;
  for (const auto& [pid, info] : table_) {
    if (owner.has_value() && pid.owner != *owner) continue;
    out.push_back(DptEntry{pid, info.psn, info.curr_psn, info.redo_lsn});
  }
  return out;
}

void DirtyPageTable::Install(const DptEntry& e) {
  DirtyPageInfo info;
  info.psn = e.psn;
  info.curr_psn = e.curr_psn;
  info.redo_lsn = e.redo_lsn;
  table_[e.pid] = info;
}

}  // namespace clog
