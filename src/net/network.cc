#include "net/network.h"
#include <algorithm>

#include <string>

#include "fault/fault_injector.h"
#include "trace/trace_sink.h"

namespace clog {
namespace {

/// Fixed per-message envelope (headers, ids, modes) used for byte
/// accounting; payload bytes are added per call site.
constexpr std::uint64_t kEnvelopeBytes = 32;

std::uint64_t EncodedSize(const std::vector<LogRecord>& records) {
  std::uint64_t bytes = 0;
  std::string scratch;
  for (const LogRecord& r : records) {
    scratch.clear();
    r.EncodeTo(&scratch);
    bytes += scratch.size() + 8;  // body + frame
  }
  return bytes;
}

}  // namespace

void Network::RegisterNode(NodeId id, NodeService* svc) {
  std::lock_guard<std::mutex> lk(mu_);
  peers_[id] = Peer{svc, true};
  // A re-registration is a restarted process: its busy-time accounting
  // starts over. Cluster-lifetime traffic counters (msg.*, bytes.*) are
  // deliberately left alone — they describe the wire, not the process.
  {
    std::lock_guard<std::mutex> blk(busy_mu_);
    busy_ns_.erase(id);
  }
  detector_.Invalidate(id);
}

void Network::SetNodeUp(NodeId id, bool up) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(id);
  if (it != peers_.end()) it->second.up = up;
  // Any liveness transition makes every cached view of this node stale.
  detector_.Invalidate(id);
}

bool Network::IsUp(NodeId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(id);
  return it != peers_.end() && it->second.up;
}

void Network::SetNodeDeparted(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(id);
  if (it != peers_.end()) {
    it->second.up = false;
    it->second.departed = true;
  }
  detector_.Invalidate(id);
}

bool Network::IsDeparted(NodeId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(id);
  return it != peers_.end() && it->second.departed;
}

std::vector<NodeId> Network::AllNodes() const {
  std::vector<NodeId> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [id, peer] : peers_) {
      if (!peer.departed) out.push_back(id);
    }
  }
  // peers_ is a hash map; callers (and determinism) expect id order.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Network::OperationalNodes(NodeId except) const {
  std::vector<NodeId> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [id, peer] : peers_) {
      if (peer.up && !peer.departed && id != except) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status Network::CheckSenderUp(NodeId from) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(from);
  if (it != peers_.end() && !it->second.up) {
    return Status::NodeDown("node " + std::to_string(from) +
                            " is disconnected");
  }
  return Status::OK();
}

Result<NodeService*> Network::Endpoint(NodeId to) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    return Status::NotFound("unknown node " + std::to_string(to));
  }
  if (!it->second.up) {
    return Status::NodeDown("node " + std::to_string(to) + " is down");
  }
  return it->second.svc;
}

Status Network::Deliver(NodeId to, const std::function<void()>& fn) {
  if (executor_ == nullptr) {
    fn();
    return Status::OK();
  }
  if (!executor_->Run(to, fn)) {
    return Status::NodeDown("node " + std::to_string(to) +
                            " execution context stopped");
  }
  return Status::OK();
}

Result<NodeService*> Network::Route(NodeId from, NodeId to) {
  CLOG_RETURN_IF_ERROR(CheckSenderUp(from));
  CLOG_ASSIGN_OR_RETURN(NodeService * endpoint, Endpoint(to));
  if (fault_ != nullptr && from != to) {
    if (fault_->LinkBlocked(from, to)) {
      fault_->NoteBlockedMessage();
      return Status::NodeDown("fault injection: link " + std::to_string(from) +
                              "<->" + std::to_string(to) + " partitioned");
    }
    // Dropped before Charge: a lost request costs the sender nothing but
    // the timeout, which the simulation does not model.
    if (fault_->DropMessage(from, to)) {
      return Status::NodeDown("fault injection: request " +
                              std::to_string(from) + "->" +
                              std::to_string(to) + " dropped");
    }
    std::uint64_t delay = fault_->DelayNanos(from, to);
    if (delay > 0) {
      if (clock_ != nullptr) clock_->Advance(delay);
      AddBusy(from, delay);
    }
  }
  return endpoint;
}

PeerHealth Network::ProbePeer(NodeId from, NodeId to) {
  std::uint64_t now = clock_ != nullptr ? clock_->NowNanos() : 0;
  NodeService* svc = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = peers_.find(to);
    if (it != peers_.end() && it->second.departed) {
      // Departed for good: authoritative, free, and terminal — callers
      // must not treat this like a crash they should wait out.
      return PeerHealth::kDeparted;
    }
    if (it == peers_.end() || !it->second.up) {
      // Connection refused: authoritative and free, so no caching needed.
      return PeerHealth::kDown;
    }
    if (auto cached = detector_.Fresh(from, to, now,
                                      retry_policy_.heartbeat_interval_ns)) {
      metrics_.GetCounter("hb.probe_cached").Add(1);
      return *cached;
    }
    svc = it->second.svc;
  }
  metrics_.GetCounter("hb.probes").Add(1);
  if (fault_ != nullptr && from != to && fault_->LinkBlocked(from, to)) {
    // The probe is lost in the partition. Like a dropped request, a lost
    // probe costs the sender nothing the simulation models.
    std::lock_guard<std::mutex> lk(mu_);
    detector_.Record(from, to, PeerHealth::kDown, now);
    return PeerHealth::kDown;
  }
  Charge(MsgType::kPing, 0, from, to);
  // Pings bypass the mailbox: HandlePing reads one atomic state word, and
  // a probe must answer even while the target's worker is wedged.
  PeerHealth health = svc->HandlePing();
  Charge(MsgType::kPingReply, 1, from, to);
  // The view is as fresh as the reply, not the request: the charges above
  // advanced the clock by the round trip, and stamping the earlier time
  // would age the entry by a full round trip before anyone reads it.
  std::lock_guard<std::mutex> lk(mu_);
  detector_.Record(from, to, health,
                   clock_ != nullptr ? clock_->NowNanos() : 0);
  return health;
}

Result<NodeService*> Network::AdmitWithRetry(NodeId from, NodeId to) {
  Result<NodeService*> first = Route(from, to);
  if (first.ok() || !retry_policy_.enabled || !first.status().IsNodeDown()) {
    return first;
  }
  // A disconnected sender cannot reach anyone; retrying is pointless.
  if (!CheckSenderUp(from).ok()) return first;
  std::uint64_t start = clock_ != nullptr ? clock_->NowNanos() : 0;
  Status original = first.status();
  for (int attempt = 1; attempt < retry_policy_.max_attempts; ++attempt) {
    if (ProbePeer(from, to) != PeerHealth::kUp) {
      // Down, recovering, or partitioned: not a transient loss, and the
      // caller has crash-handling for exactly this error. Fail fast.
      return original;
    }
    // The target is alive and reachable, so the admission failure was a
    // random drop. Wait out the backoff on the sender and resend.
    std::uint64_t backoff;
    {
      std::lock_guard<std::mutex> lk(mu_);
      backoff = BackoffNanos(retry_policy_, attempt, &backoff_rng_);
    }
    if (clock_ != nullptr) clock_->Advance(backoff);
    AddBusy(from, backoff);
    metrics_.GetCounter("rpc.retries").Add(1);
    metrics_.GetCounter("rpc.backoff_ns").Add(backoff);
    if (trace_ != nullptr) {
      trace_->Emit(from, TraceEventType::kRpcRetry, to, backoff,
                   static_cast<std::uint32_t>(attempt));
    }
    Result<NodeService*> again = Route(from, to);
    if (again.ok()) {
      metrics_.GetCounter("rpc.retry_success").Add(1);
      return again;
    }
    if (!again.status().IsNodeDown()) return again;
    if (clock_ != nullptr &&
        clock_->NowNanos() - start >= retry_policy_.deadline_ns) {
      break;
    }
  }
  // Budget or deadline exhausted: surface the *original* admission error,
  // not whatever the last probe/resend happened to see.
  metrics_.GetCounter("rpc.retry_exhausted").Add(1);
  return original;
}

std::uint64_t Network::MaxBusyNanos() const {
  std::lock_guard<std::mutex> lk(busy_mu_);
  std::uint64_t max = 0;
  for (const auto& [_, ns] : busy_ns_) max = std::max(max, ns);
  return max;
}

void Network::Charge(MsgType type, std::uint64_t bytes, NodeId from,
                     NodeId to) {
  bytes += kEnvelopeBytes;
  metrics_.GetCounter(std::string("msg.") + std::string(MsgTypeName(type)))
      .Add(1);
  metrics_.GetCounter("msg.total").Add(1);
  metrics_.GetCounter("bytes.total").Add(bytes);
  std::uint64_t ns = cost_.network_msg_ns + bytes * cost_.network_byte_ns;
  if (clock_ != nullptr) clock_->Advance(ns);
  // Both endpoints spend the wire time (send + receive handling).
  AddBusy(from, ns);
  AddBusy(to, ns);
  if (trace_ != nullptr) {
    const std::uint32_t mt = static_cast<std::uint32_t>(type);
    trace_->Emit(from, TraceEventType::kRpcSend, to, bytes, mt);
    trace_->Emit(to, TraceEventType::kRpcRecv, from, bytes, mt);
  }
}

Status Network::LockPage(NodeId from, NodeId to, PageId pid, LockMode mode,
                         bool want_page, LockPageReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kLockPageRequest, 0, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleLockPage(from, pid, mode, want_page, reply); }));
  Charge(MsgType::kLockPageReply, reply->page ? kPageSize : 0, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::Callback(NodeId from, NodeId to, PageId pid,
                         LockMode downgrade_to, CallbackReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kCallback, 0, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleCallback(from, pid, downgrade_to, reply); }));
  Charge(MsgType::kCallbackReply, reply->page ? kPageSize : 0, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::UnlockNotice(NodeId from, NodeId to, PageId pid) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kUnlockNotice, 0, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleUnlockNotice(from, pid); }));
  RecordRtt(t0);
  return st;
}

Status Network::PageShip(NodeId from, NodeId to, const Page& page) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kPageShip, kPageSize, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandlePageShip(from, page); }));
  RecordRtt(t0);
  return st;
}

Status Network::FlushRequest(NodeId from, NodeId to, PageId pid) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kFlushRequest, 0, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleFlushRequest(from, pid); }));
  RecordRtt(t0);
  return st;
}

Status Network::FlushNotify(NodeId from, NodeId to, PageId pid,
                            Psn flushed_psn) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kFlushNotify, 0, from, to);
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { svc->HandleFlushNotify(from, pid, flushed_psn); }));
  RecordRtt(t0);
  // FlushNotify is a one-way idempotent notice: re-delivery just re-asserts
  // a durability watermark the replacer already recorded.
  if (fault_ != nullptr && from != to && fault_->DuplicateNotice(from, to)) {
    Charge(MsgType::kFlushNotify, 0, from, to);
    (void)Deliver(to, [&] { svc->HandleFlushNotify(from, pid, flushed_psn); });
  }
  return Status::OK();
}

Status Network::LogShip(NodeId from, NodeId to,
                        const std::vector<LogRecord>& records, bool force) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kLogShip, EncodedSize(records), from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleLogShip(from, records, force); }));
  RecordRtt(t0);
  return st;
}

Status Network::RecoveryQuery(NodeId from, NodeId to,
                              RecoveryQueryReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kRecoveryQuery, 0, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleRecoveryQuery(from, reply); }));
  std::uint64_t bytes = reply->cached_pages_of_crashed.size() * 8 +
                        reply->dpt_entries_for_crashed.size() * 32 +
                        reply->locks_i_hold_on_crashed.size() * 9 +
                        reply->x_locks_crashed_held_here.size() * 9;
  Charge(MsgType::kRecoveryQueryReply, bytes, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::FetchCachedPage(NodeId from, NodeId to, PageId pid,
                                std::shared_ptr<Page>* page) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kFetchCachedPage, 0, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleFetchCachedPage(from, pid, page); }));
  Charge(MsgType::kFetchCachedPageReply, *page ? kPageSize : 0, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::BuildPsnList(NodeId from, NodeId to,
                             const std::vector<PageId>& pages,
                             bool full_history, PsnListReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kBuildPsnList, pages.size() * 8 + 1, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleBuildPsnList(from, pages, full_history, reply); }));
  std::uint64_t entries = 0;
  for (const auto& v : reply->per_page) entries += v.size();
  Charge(MsgType::kBuildPsnListReply, entries * 16, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::RecoverPage(NodeId from, NodeId to, PageId pid,
                            const Page& page_in, bool has_bound, Psn bound,
                            RecoverPageReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kRecoverPage, kPageSize, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(Deliver(to, [&] {
    st = svc->HandleRecoverPage(from, pid, page_in, has_bound, bound,
                                reply);
  }));
  Charge(MsgType::kRecoverPageReply, reply->page ? kPageSize : 0, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::DptShip(NodeId from, NodeId to,
                        const std::vector<DptEntry>& entries,
                        const std::vector<PageId>& cached_pages) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kDptShip, entries.size() * 32 + cached_pages.size() * 8, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleDptShip(from, entries, cached_pages); }));
  RecordRtt(t0);
  return st;
}

Status Network::NodeRecovered(NodeId from, NodeId to, NodeId who) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kNodeRecovered, 4, from, to);
  CLOG_RETURN_IF_ERROR(Deliver(to, [&] { svc->HandleNodeRecovered(who); }));
  RecordRtt(t0);
  // The broadcast doubles as an event-driven heartbeat: the receiver now
  // knows `who` is up without ever probing it.
  {
    std::lock_guard<std::mutex> lk(mu_);
    detector_.Record(to, who, PeerHealth::kUp,
                     clock_ != nullptr ? clock_->NowNanos() : 0);
  }
  // NodeRecovered is likewise idempotent: it clears crash-recovery state
  // for `who`, and clearing twice is a no-op.
  if (fault_ != nullptr && from != to && fault_->DuplicateNotice(from, to)) {
    Charge(MsgType::kNodeRecovered, 4, from, to);
    (void)Deliver(to, [&] { svc->HandleNodeRecovered(who); });
  }
  return Status::OK();
}

Status Network::HandoffOfferRpc(NodeId from, NodeId to,
                                const HandoffOffer& offer,
                                HandoffOfferReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kHandoffOffer,
         kPageSize + offer.replacers.size() * 4 + offer.holders.size() * 5,
         from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleHandoffOffer(from, offer, reply); }));
  Charge(MsgType::kHandoffOfferReply, 1, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::HandoffQueryRpc(NodeId from, NodeId to, PageId pid,
                                HandoffQueryReply* reply) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kHandoffQuery, 8, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleHandoffQuery(from, pid, reply); }));
  Charge(MsgType::kHandoffQueryReply, 9, from, to);
  RecordRtt(t0);
  return st;
}

Status Network::LogLossNotice(NodeId from, NodeId to,
                              const std::vector<PageId>& pages) {
  const std::uint64_t t0 = Now();
  CLOG_ASSIGN_OR_RETURN(NodeService * svc, AdmitWithRetry(from, to));
  Charge(MsgType::kLogLossNotice, pages.size() * 8, from, to);
  Status st;
  CLOG_RETURN_IF_ERROR(
      Deliver(to, [&] { st = svc->HandleLogLossNotice(from, pages); }));
  RecordRtt(t0);
  // Idempotent one-way notice: poisoning an already-poisoned page is a
  // no-op, so duplication is safe.
  if (st.ok() && fault_ != nullptr && from != to &&
      fault_->DuplicateNotice(from, to)) {
    Charge(MsgType::kLogLossNotice, pages.size() * 8, from, to);
    (void)Deliver(to, [&] { (void)svc->HandleLogLossNotice(from, pages); });
  }
  return st;
}

}  // namespace clog
