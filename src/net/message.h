#ifndef CLOG_NET_MESSAGE_H_
#define CLOG_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/lock_mode.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"
#include "wal/log_record.h"

/// \file
/// Message vocabulary of the cluster. Transport is synchronous in-process
/// dispatch (DESIGN.md Section 4), but every logical message the 1996 system
/// would put on the wire is represented here so the network layer can count
/// messages and bytes per type — the currency of the paper's performance
/// arguments.

namespace clog {

/// Every distinct wire message. Kept in one enum so benchmark output can
/// break traffic down by purpose.
enum class MsgType : std::uint8_t {
  // Normal processing (Section 2.2).
  kLockPageRequest,   ///< Requester -> owner: lock (and maybe fetch) a page.
  kLockPageReply,     ///< Owner -> requester: grant + optional page copy.
  kCallback,          ///< Owner -> holder: release/downgrade a cached lock.
  kCallbackReply,     ///< Holder -> owner: ack + optional dirty page copy.
  kUnlockNotice,      ///< Requester -> owner: dropped a cached lock.
  kPageShip,          ///< Client -> owner: replaced dirty page travels home.
  kFlushNotify,       ///< Owner -> replacers: page now on disk (Section 2.5).
  kFlushRequest,      ///< Any -> owner: please force page (Section 2.5).
  kLogShip,           ///< Baseline B1 only: client log records -> owner.

  // Crash recovery (Sections 2.3 and 2.4).
  kRecoveryQuery,       ///< Restarting node -> peer: caches/DPT/lock lists.
  kRecoveryQueryReply,  ///< Peer -> restarting node.
  kFetchCachedPage,     ///< Owner -> cache holder: send current page copy.
  kFetchCachedPageReply,
  kBuildPsnList,        ///< Restarting node -> peer: scan your log.
  kBuildPsnListReply,   ///< Peer -> restarting node: NodePSNList.
  kRecoverPage,         ///< Coordinator -> peer: apply your redo up to PSN.
  kRecoverPageReply,    ///< Peer -> coordinator: page after redo.
  kDptShip,             ///< Multi-crash: DPT entries for pages you own.
  kNodeRecovered,       ///< Broadcast: node back online.
  kLogLossNotice,       ///< Restarting node -> owner: my log was destroyed;
                        ///< these pages of yours held updates only I logged.

  // Availability layer (failure detection).
  kPing,                ///< Prober -> peer: are you up, recovering, or gone?
  kPingReply,           ///< Peer -> prober: liveness verdict.

  // Elastic membership (ownership handoff, docs/PROTOCOLS.md).
  kHandoffOffer,        ///< Old owner -> new owner: adopt this page + residue.
  kHandoffOfferReply,   ///< New owner -> old owner: adoption verdict.
  kHandoffQuery,        ///< Old owner -> new owner: did my offer land?
  kHandoffQueryReply,   ///< New owner -> old owner: adopted or not.
};

/// Canonical name used as the metrics key suffix ("msg.lock_page_request").
std::string_view MsgTypeName(MsgType t);

/// What a heartbeat probe learns about a peer. A *recovering* peer answers
/// pings (its process is alive and serving recovery RPCs) but refuses
/// ordinary page traffic; a *down* peer answers nothing.
enum class PeerHealth : std::uint8_t {
  kDown = 0,
  kRecovering = 1,
  kUp = 2,
  /// Left the cluster for good (elastic membership). Unlike kDown this is
  /// authoritative and permanent: nobody waits for, retries against, or
  /// tries to recover a departed peer.
  kDeparted = 3,
};

/// Canonical lower-case name ("down", "recovering", "up", "departed").
std::string_view PeerHealthName(PeerHealth h);

/// Reply to kLockPageRequest.
struct LockPageReply {
  bool granted = false;
  /// Current page image, present when the requester asked for the page.
  std::shared_ptr<Page> page;
  /// When not granted: nodes whose cached locks conflict (deadlock info).
  std::vector<NodeId> blockers;
  /// When not granted: remote transactions actively using the conflicting
  /// locks (collected from failed callbacks; feeds the waits-for graph).
  std::vector<TxnId> blocking_txns;
};

/// Reply to kCallback.
struct CallbackReply {
  bool complied = false;
  /// Latest page image if the holder's copy was dirty.
  std::shared_ptr<Page> page;
  Psn page_psn = 0;
  /// When not complied: local transactions still using the lock.
  std::vector<TxnId> blocking_txns;
};

/// One node's lock-state contribution to a restarting node
/// (Section 2.3.3).
struct LockListEntry {
  PageId pid;
  LockMode mode = LockMode::kNone;
};

/// Reply to kRecoveryQuery: everything an operational node tells a
/// restarting node N (Section 2.3).
struct RecoveryQueryReply {
  /// Pages owned by N present in this node's cache.
  std::vector<PageId> cached_pages_of_crashed;
  /// This node's DPT entries for pages owned by N.
  std::vector<DptEntry> dpt_entries_for_crashed;
  /// Locks this node holds on pages owned by N (rebuilds N's global lock
  /// table). Shared locks N held here have been released; exclusive locks N
  /// held here are listed separately below and retained.
  std::vector<LockListEntry> locks_i_hold_on_crashed;
  /// Exclusive locks the crashed node held on pages this node owns.
  std::vector<LockListEntry> x_locks_crashed_held_here;
  /// Pages owned by N that *this* node's destroyed log left unrecoverable
  /// (log-loss debts, docs/RECOVERY_WALKTHROUGH.md): recorded durably when
  /// this node lost its log while holding X on N's pages and N was
  /// unreachable. N poisons these on receipt.
  std::vector<PageId> log_loss_pages_of_crashed;
};

/// One entry of a NodePSNList (Section 2.3.4): the PSN stored in the first
/// log record a transaction run wrote for the page, plus where that run
/// starts in the node's log.
struct PsnListEntry {
  Psn psn = 0;
  Lsn start_lsn = kNullLsn;
};

/// Reply to kBuildPsnList: per requested page, the ascending list of
/// transaction-run start PSNs found in this node's log.
struct PsnListReply {
  /// Parallel to the request's page vector.
  std::vector<std::vector<PsnListEntry>> per_page;
  /// Log records scanned building the list (benchmark metric).
  std::uint64_t records_scanned = 0;
};

/// Reply to kRecoverPage.
struct RecoverPageReply {
  std::shared_ptr<Page> page;    ///< Page after applying this node's redo.
  bool more = false;             ///< Node has further records past the bound.
  std::uint64_t applied = 0;     ///< Redo records applied (metric).
};

/// One holder-residue entry travelling with a handoff: a node-level cached
/// lock on the page granted by the old owner and re-installed verbatim by
/// the new one, so callback locking survives the transfer.
struct HandoffHolderEntry {
  NodeId node = kInvalidNodeId;
  LockMode mode = LockMode::kNone;
};

/// kHandoffOffer: everything the new owner needs to take a page over — the
/// latest durable image plus the *owner-side recovery state* the paper's
/// protocols hang off the owner (Section 2.5): the replacer set whose DPT
/// RedoLSNs are waiting on a FlushNotify from whoever owns the page, the
/// node-level lock residue, and the PSN the page's durable history was
/// seeded at (needed for full-history rebuilds after the home node's space
/// map is out of the picture).
struct HandoffOffer {
  PageId pid;
  std::shared_ptr<Page> page;  ///< Durable-latest image at the old owner.
  Psn psn = 0;                 ///< page->psn(), for cheap logging/metrics.
  Psn seed_psn = 0;            ///< PSN the page's durable history starts at.
  /// Nodes that replaced this page dirty and still hold a DPT entry for it:
  /// the new owner notifies them (FlushNotify) once its copy is durable, so
  /// their RedoLSNs advance off a node that was never the page's home.
  std::vector<NodeId> replacers;
  /// Node-level cached locks the old owner's global table granted.
  std::vector<HandoffHolderEntry> holders;
  /// Membership epoch at the old owner when the offer was built.
  std::uint64_t epoch = 0;
};

/// Reply to kHandoffOffer.
struct HandoffOfferReply {
  bool accepted = false;
};

/// Reply to kHandoffQuery: the crash-re-entry probe. `adopted` is read from
/// the target's durable handoff ledger, so the answer survives any number
/// of crashes on either side.
struct HandoffQueryReply {
  bool adopted = false;
  Psn psn = 0;  ///< Adopted image's PSN when adopted.
};

}  // namespace clog

#endif  // CLOG_NET_MESSAGE_H_
