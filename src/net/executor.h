#ifndef CLOG_NET_EXECUTOR_H_
#define CLOG_NET_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/types.h"

/// \file
/// The execution seam of the dual-mode engine (docs/architecture_modes.md).
/// Every piece of work that must run "on" a node — a client transaction
/// body, a peer RPC handler, a recovery phase — goes through
/// Executor::Run(node, fn). The simulation backend executes it inline on
/// the single driving thread, preserving the deterministic synchronous
/// call graph byte for byte. The real-threads backend gives each node one
/// worker thread draining a bounded MPSC mailbox, so node state stays
/// thread-confined exactly as the single-threaded Node code assumes while
/// different nodes genuinely run in parallel on real time and real fsync.

namespace clog {

/// Which backend a Cluster runs on (ClusterOptions::execution_mode).
enum class ExecutionMode : std::uint8_t {
  kSimulation = 0,   ///< Deterministic inline execution on a SimClock.
  kRealThreads = 1,  ///< Thread-per-node mailboxes on a WallClock.
};

/// Strategy interface for where node work executes.
class Executor {
 public:
  using Task = std::function<void()>;

  virtual ~Executor() = default;

  /// True when nodes run on their own threads (real mode). Gates the bits
  /// of Cluster wiring that must not exist in simulation mode, where any
  /// extra call would perturb the deterministic schedule.
  virtual bool real_threads() const = 0;

  /// Brings up (or re-arms after StopNode) the execution context of `id`.
  virtual void StartNode(NodeId id) = 0;

  /// Tears down `id`'s execution context: no new work is admitted, the
  /// worker finishes its current task and is joined, and anything still
  /// queued is rejected. Models killing the node's process. Idempotent.
  virtual void StopNode(NodeId id) = 0;

  /// StopNode for every known node (cluster shutdown).
  virtual void StopAll() = 0;

  /// Runs `fn` in `id`'s execution context and waits for it to finish.
  /// Returns false if the work was rejected because the node's context is
  /// stopped (the caller sees the node as down). `fn` may itself call Run
  /// against other nodes (RPCs) or the same node (self-sends).
  virtual bool Run(NodeId id, const Task& fn) = 0;
};

/// Simulation backend: work runs synchronously on the calling thread. The
/// Start/Stop lifecycle is a no-op — liveness is modeled by Node/Network
/// state, exactly as before the seam existed.
class InlineExecutor final : public Executor {
 public:
  bool real_threads() const override { return false; }
  void StartNode(NodeId id) override {}
  void StopNode(NodeId id) override {}
  void StopAll() override {}
  bool Run(NodeId id, const Task& fn) override {
    fn();
    return true;
  }
};

/// Real-threads backend: one worker thread per node draining a bounded
/// MPSC mailbox of calls. Senders block while the mailbox is full
/// (backpressure) and block until their call completes (the RPC surface is
/// synchronous request/reply).
///
/// Reentrant waits keep the sim's recursive call shape deadlock-free: a
/// node thread that is waiting for a reply from another node drains and
/// executes its *own* mailbox in the meantime, so a call chain A -> B -> A
/// completes on A's thread just as it completes on the simulation's one
/// thread. This is also what keeps Node's deep state thread-confined: all
/// work on node N — whatever thread submitted it — executes on N's worker.
class ThreadPerNodeExecutor final : public Executor {
 public:
  static constexpr std::size_t kDefaultMailboxCapacity = 1024;

  explicit ThreadPerNodeExecutor(
      std::size_t mailbox_capacity = kDefaultMailboxCapacity);
  ~ThreadPerNodeExecutor() override;

  bool real_threads() const override { return true; }
  void StartNode(NodeId id) override;
  void StopNode(NodeId id) override;
  void StopAll() override;
  bool Run(NodeId id, const Task& fn) override;

 private:
  struct Worker;

  /// One in-flight Run() call. Lives on the sender's stack — Run blocks
  /// until `done` or `rejected`, so the pointer in the mailbox never
  /// dangles. Completion is signalled on the sender's own worker's cv when
  /// the sender is a node thread (reentrant wait), else on `cv` here.
  struct Call {
    const Task* fn = nullptr;
    Worker* home = nullptr;  ///< Sender's worker; nullptr for external threads.
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> done{false};
    std::atomic<bool> rejected{false};
  };

  /// Per-node mailbox + thread. Workers are created once per node id and
  /// never destroyed before the executor (stable addresses: in-flight calls
  /// hold `home` pointers across restarts of other nodes).
  struct Worker {
    NodeId id = kInvalidNodeId;
    std::mutex mu;
    std::condition_variable cv;        ///< Work arrival / completion / stop.
    std::condition_variable not_full;  ///< Mailbox backpressure.
    std::deque<Call*> mailbox;
    bool running = false;
    bool stopping = false;
    std::thread thread;
  };

  Worker* FindWorker(NodeId id);
  void WorkerLoop(Worker* w);
  static void Execute(Call* c);
  static void FinishCall(Call* c, bool rejected);
  static void StopLocked(Worker* w);

  const std::size_t capacity_;
  std::mutex registry_mu_;
  std::map<NodeId, std::unique_ptr<Worker>> workers_;
};

}  // namespace clog

#endif  // CLOG_NET_EXECUTOR_H_
