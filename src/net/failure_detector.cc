#include "net/failure_detector.h"

#include <algorithm>

namespace clog {

std::uint64_t BackoffNanos(const RetryPolicy& policy, int attempt,
                           Random* rng) {
  if (attempt < 1) attempt = 1;
  // Cap the shift well below 64 bits; the cap clamp below dominates anyway.
  int shift = std::min(attempt - 1, 40);
  std::uint64_t base = policy.backoff_base_ns;
  std::uint64_t raw = base << shift;
  if (shift > 0 && (raw >> shift) != base) raw = policy.backoff_cap_ns;
  std::uint64_t ns = std::min(raw, policy.backoff_cap_ns);
  if (rng != nullptr && policy.jitter > 0.0 && ns > 0) {
    // Stretch by a uniform factor in [1, 1 + jitter]. Integer arithmetic
    // keeps the schedule exactly reproducible across platforms.
    std::uint64_t span =
        static_cast<std::uint64_t>(static_cast<double>(ns) * policy.jitter);
    if (span > 0) ns += rng->Uniform(span + 1);
  }
  return ns;
}

void FailureDetector::Record(NodeId observer, NodeId peer, PeerHealth health,
                             std::uint64_t now) {
  views_[{observer, peer}] = View{health, now};
}

std::optional<PeerHealth> FailureDetector::Fresh(
    NodeId observer, NodeId peer, std::uint64_t now,
    std::uint64_t max_age_ns) const {
  auto it = views_.find({observer, peer});
  if (it == views_.end()) return std::nullopt;
  if (now - it->second.checked_at > max_age_ns) return std::nullopt;
  return it->second.health;
}

void FailureDetector::Invalidate(NodeId peer) {
  for (auto it = views_.begin(); it != views_.end();) {
    if (it->first.second == peer) {
      it = views_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace clog
