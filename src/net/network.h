#ifndef CLOG_NET_NETWORK_H_
#define CLOG_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/types.h"
#include "net/executor.h"
#include "net/failure_detector.h"
#include "net/message.h"

/// \file
/// The cluster interconnect. Dispatch is a synchronous in-process call into
/// the target node's NodeService, but every call is accounted as the two
/// wire messages (request + reply) the real system would send: per-type
/// message counters, byte counters, and simulated latency charged to the
/// cluster SimClock. Crashed nodes are unreachable (NodeDown).
///
/// An optional FaultInjector makes the interconnect lossy: requests can be
/// dropped before dispatch, delayed, or refused by a link partition (all
/// surfacing as NodeDown, the condition every caller already tolerates),
/// and idempotent one-way notices can be duplicated.
///
/// When a RetryPolicy is enabled, every RPC runs inside an idempotent
/// envelope (docs/availability.md): an admission failure — drop, partition,
/// endpoint down — happens strictly *before* dispatch, so the handler never
/// ran and resending is always safe regardless of handler idempotency. The
/// envelope probes the target (heartbeat), and only while the target looks
/// *up* (i.e. the loss was a transient drop) does it back off — capped
/// exponential with seeded jitter, charged to the simulated clock — and
/// resend, up to a retry budget and per-message deadline. Down, recovering,
/// and partitioned targets fail fast, preserving crash semantics.

namespace clog {

class FaultInjector;
class TraceSink;

/// The RPC surface a node exposes to its peers. One method per request
/// MsgType; replies are out-parameters. Implemented by node::Node.
class NodeService {
 public:
  virtual ~NodeService() = default;

  // --- Normal processing (Section 2.2) ---

  /// Owner-side: grant `mode` on `pid` to node `from`, running callbacks to
  /// conflicting holders first. Fills the page image if `want_page`.
  virtual Status HandleLockPage(NodeId from, PageId pid, LockMode mode,
                                bool want_page, LockPageReply* reply) = 0;

  /// Holder-side: release (downgrade_to == kNone) or demote
  /// (downgrade_to == kShared) the cached lock on `pid`; ship the cached
  /// copy when dirty.
  virtual Status HandleCallback(NodeId from, PageId pid, LockMode downgrade_to,
                                CallbackReply* reply) = 0;

  /// Owner-side: node `from` voluntarily dropped its cached lock on `pid`.
  virtual Status HandleUnlockNotice(NodeId from, PageId pid) = 0;

  /// Owner-side: a replaced dirty copy of one of my pages arrives.
  virtual Status HandlePageShip(NodeId from, const Page& page) = 0;

  /// Owner-side: force `pid` to disk now (Section 2.5 log-space pressure).
  virtual Status HandleFlushRequest(NodeId from, PageId pid) = 0;

  /// Replacer-side: owner reports `pid` durable at `flushed_psn`.
  virtual void HandleFlushNotify(NodeId from, PageId pid, Psn flushed_psn) = 0;

  /// Owner-side (baseline B1 only): client ships log records; `force` asks
  /// for a commit-time log force.
  virtual Status HandleLogShip(NodeId from,
                               const std::vector<LogRecord>& records,
                               bool force) = 0;

  // --- Crash recovery (Sections 2.3, 2.4) ---

  /// Peer-side: restarting node `crashed` gathers my cache/DPT/lock state
  /// relevant to it; I release shared locks it held here and retain its
  /// exclusive ones (Section 2.3.3).
  virtual Status HandleRecoveryQuery(NodeId crashed,
                                     RecoveryQueryReply* reply) = 0;

  /// Peer-side: ship my cached copy of `pid` to the recovering owner
  /// (Section 2.3.1: cached copies supersede recovery).
  virtual Status HandleFetchCachedPage(NodeId from, PageId pid,
                                       std::shared_ptr<Page>* page) = 0;

  /// Peer-side: scan my log and build NodePSNLists for `pages`
  /// (Section 2.3.4). With `full_history` the scan starts at the log's
  /// first record and ignores the DPT — needed when the requester is
  /// rebuilding a torn on-disk page from its space-map PSN seed.
  virtual Status HandleBuildPsnList(NodeId from,
                                    const std::vector<PageId>& pages,
                                    bool full_history,
                                    PsnListReply* reply) = 0;

  /// Peer-side: apply my redo records for `pid` to `page`, stopping at the
  /// first record whose PSN exceeds `bound` (if `has_bound`).
  virtual Status HandleRecoverPage(NodeId from, PageId pid,
                                   const Page& page_in, bool has_bound,
                                   Psn bound, RecoverPageReply* reply) = 0;

  /// Owner-side (multi-crash, Section 2.4): a recovering peer ships the DPT
  /// entries it rebuilt for pages I own, plus which of my pages it caches.
  virtual Status HandleDptShip(NodeId from,
                               const std::vector<DptEntry>& entries,
                               const std::vector<PageId>& cached_pages) = 0;

  /// Any-side: `who` finished restart recovery and is operational again.
  virtual void HandleNodeRecovered(NodeId who) = 0;

  /// Owner-side (media failure): restarting node `from` lost its log
  /// device; `pages` are pages I own on which `from` held exclusive locks,
  /// so their newest committed versions existed only in `from`'s destroyed
  /// log. I must poison them — refusing service beats serving stale data.
  /// Idempotent one-way notice.
  virtual Status HandleLogLossNotice(NodeId from,
                                     const std::vector<PageId>& pages) = 0;

  // --- Availability layer ---

  /// Heartbeat probe: how alive is this process? Only reachable while the
  /// endpoint is registered as up, so the default covers every service that
  /// has no recovering state; node::Node reports kRecovering while its
  /// restart recovery is in flight.
  virtual PeerHealth HandlePing() { return PeerHealth::kUp; }

  // --- Elastic membership (ownership handoff) ---

  /// New-owner side: adopt `offer.pid` — durably store the image and the
  /// transferred recovery residue, register as current owner, and notify
  /// the inherited replacers. Defaulted so services that never participate
  /// in handoffs (mocks, baselines) need no stub.
  virtual Status HandleHandoffOffer(NodeId from, const HandoffOffer& offer,
                                    HandoffOfferReply* reply) {
    (void)from;
    (void)offer;
    reply->accepted = false;
    return Status::NotSupported("handoff not supported");
  }

  /// New-owner side: crash re-entry probe — did `pid` make it into my
  /// durable handoff ledger?
  virtual Status HandleHandoffQuery(NodeId from, PageId pid,
                                    HandoffQueryReply* reply) {
    (void)from;
    (void)pid;
    reply->adopted = false;
    return Status::OK();
  }
};

/// Routes calls between nodes and accounts for them.
///
/// Dual-mode delivery (docs/architecture_modes.md): with no executor
/// attached (or the inline one), a handler runs synchronously on the
/// calling thread — the deterministic simulation. With a real-threads
/// executor attached, the handler is delivered to the target node's worker
/// thread through its bounded mailbox and the caller blocks for the reply;
/// registration, liveness, and busy-time state are mutex-guarded so
/// concurrent node threads can route safely.
class Network {
 public:
  Network(Clock* clock, CostModel cost) : clock_(clock), cost_(cost) {}

  /// Attaches the execution backend handlers are delivered through
  /// (nullptr = inline, the default). Not owned; must outlive the network
  /// while attached. Set once at cluster construction, before traffic.
  void set_executor(Executor* executor) { executor_ = executor; }
  Executor* executor() { return executor_; }

  /// Attaches a fault injector (nullptr detaches). Not owned; must outlive
  /// the network while attached.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }
  FaultInjector* fault_injector() { return fault_; }

  /// Attaches a trace sink emitting RPC_SEND/RPC_RECV per accounted wire
  /// message and RPC_RETRY per envelope resend (nullptr detaches). Not
  /// owned; must outlive the network while attached.
  void set_trace_sink(TraceSink* trace) { trace_ = trace; }

  /// Installs the availability policy. Reseeds the jitter PRNG so the
  /// retry schedule is a pure function of the policy seed.
  void set_retry_policy(const RetryPolicy& policy) {
    retry_policy_ = policy;
    backoff_rng_ = Random(policy.jitter_seed);
  }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Heartbeat probe from `from`'s point of view: answers from the view
  /// table when fresh (within heartbeat_interval_ns), otherwise charges a
  /// ping round-trip. Down endpoints and partitioned links answer kDown for
  /// free — the probe is lost, and a lost probe costs the sender nothing
  /// the simulation models (same rule as dropped requests).
  PeerHealth ProbePeer(NodeId from, NodeId to);

  /// Registers (or re-registers) a node's service endpoint; nodes start up.
  void RegisterNode(NodeId id, NodeService* svc);

  /// Marks a node crashed (calls to it fail with NodeDown) or back up.
  void SetNodeUp(NodeId id, bool up);
  bool IsUp(NodeId id) const;

  /// Marks a node as permanently departed (elastic membership): calls to it
  /// fail with NodeDown, probes answer kDeparted authoritatively and for
  /// free, and it disappears from OperationalNodes — so recovery protocols
  /// never wait on it the way they would on a merely-down peer.
  void SetNodeDeparted(NodeId id);
  bool IsDeparted(NodeId id) const;

  /// All registered node ids (departed members excluded).
  std::vector<NodeId> AllNodes() const;

  /// Registered nodes currently up, excluding `except` and departed peers.
  std::vector<NodeId> OperationalNodes(NodeId except = kInvalidNodeId) const;

  // --- Accounted RPC wrappers (one per request type) ---
  Status LockPage(NodeId from, NodeId to, PageId pid, LockMode mode,
                  bool want_page, LockPageReply* reply);
  Status Callback(NodeId from, NodeId to, PageId pid, LockMode downgrade_to,
                  CallbackReply* reply);
  Status UnlockNotice(NodeId from, NodeId to, PageId pid);
  Status PageShip(NodeId from, NodeId to, const Page& page);
  Status FlushRequest(NodeId from, NodeId to, PageId pid);
  Status FlushNotify(NodeId from, NodeId to, PageId pid, Psn flushed_psn);
  Status LogShip(NodeId from, NodeId to, const std::vector<LogRecord>& records,
                 bool force);
  Status RecoveryQuery(NodeId from, NodeId to, RecoveryQueryReply* reply);
  Status FetchCachedPage(NodeId from, NodeId to, PageId pid,
                         std::shared_ptr<Page>* page);
  Status BuildPsnList(NodeId from, NodeId to, const std::vector<PageId>& pages,
                      bool full_history, PsnListReply* reply);
  Status RecoverPage(NodeId from, NodeId to, PageId pid, const Page& page_in,
                     bool has_bound, Psn bound, RecoverPageReply* reply);
  Status DptShip(NodeId from, NodeId to, const std::vector<DptEntry>& entries,
                 const std::vector<PageId>& cached_pages);
  Status NodeRecovered(NodeId from, NodeId to, NodeId who);
  Status LogLossNotice(NodeId from, NodeId to,
                       const std::vector<PageId>& pages);
  Status HandoffOfferRpc(NodeId from, NodeId to, const HandoffOffer& offer,
                         HandoffOfferReply* reply);
  Status HandoffQueryRpc(NodeId from, NodeId to, PageId pid,
                         HandoffQueryReply* reply);

  /// Traffic metrics ("msg.<type>", "msg.total", "bytes.total") and the
  /// "rpc.rtt_ns" round-trip histogram (one sample per RPC wrapper call,
  /// measured on the simulated clock from admission to reply).
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  Clock* clock() { return clock_; }
  const CostModel& cost_model() const { return cost_; }

  /// Per-node busy-time accounting: the simulation is single-threaded, so
  /// the shared clock measures the *sequential* critical path; per-node
  /// busy time lets benchmarks compute the parallel makespan
  /// (max over nodes) of a workload, which is what distinguishes "every
  /// node forces its own log" from "every commit funnels through the
  /// server" (DESIGN.md E2).
  void AddBusy(NodeId node, std::uint64_t ns) {
    std::lock_guard<std::mutex> lk(busy_mu_);
    busy_ns_[node] += ns;
  }
  std::uint64_t BusyNanos(NodeId node) const {
    std::lock_guard<std::mutex> lk(busy_mu_);
    auto it = busy_ns_.find(node);
    return it == busy_ns_.end() ? 0 : it->second;
  }
  /// Largest per-node busy time (the parallel makespan lower bound).
  std::uint64_t MaxBusyNanos() const;
  void ResetBusy() {
    std::lock_guard<std::mutex> lk(busy_mu_);
    busy_ns_.clear();
  }

 private:
  /// Looks up a live endpoint or returns NodeDown/NotFound.
  Result<NodeService*> Endpoint(NodeId to) const;

  /// A disconnected sender cannot reach anyone (links are bidirectional).
  Status CheckSenderUp(NodeId from) const;

  /// Runs `fn` (one handler invocation) in `to`'s execution context:
  /// inline without an executor, else through Executor::Run. A rejected
  /// delivery (the target's worker stopped mid-flight) surfaces as
  /// NodeDown — the same error a crashed endpoint produces at admission.
  Status Deliver(NodeId to, const std::function<void()>& fn);

  /// Full per-request admission path: sender up, endpoint live, link not
  /// partitioned, request not dropped by the fault injector (both surface
  /// as NodeDown), injected delay charged.
  Result<NodeService*> Route(NodeId from, NodeId to);

  /// The idempotent RPC envelope: Route, and on a transient admission
  /// failure (target probes as *up*, so the loss was a random drop) back
  /// off and resend within the retry budget and deadline. Every RPC
  /// wrapper routes here; with the policy disabled it is exactly Route.
  Result<NodeService*> AdmitWithRetry(NodeId from, NodeId to);

  /// Accounts one wire message of `bytes` payload between two endpoints.
  void Charge(MsgType type, std::uint64_t bytes, NodeId from, NodeId to);

  /// Records one "rpc.rtt_ns" sample: simulated time elapsed since `t0`.
  void RecordRtt(std::uint64_t t0) {
    if (clock_ != nullptr) rtt_hist_->Record(clock_->NowNanos() - t0);
  }

  /// Simulated now, for RecordRtt start stamps.
  std::uint64_t Now() const { return clock_ != nullptr ? clock_->NowNanos() : 0; }

  struct Peer {
    NodeService* svc = nullptr;
    bool up = false;
    bool departed = false;
  };

  Clock* clock_;
  CostModel cost_;
  Executor* executor_ = nullptr;
  FaultInjector* fault_ = nullptr;
  /// Guards peers_, the failure-detector view table, and the backoff PRNG
  /// against concurrent node threads in real mode. Never held across a
  /// handler dispatch — only around the leaf map/table accesses — so the
  /// locking cannot deadlock with reentrant RPC chains.
  mutable std::mutex mu_;
  /// Separate guard for busy_ns_: AddBusy is called from inside Charge
  /// while callers may hold nothing, and keeping it off mu_ keeps the
  /// accounting path contention-free.
  mutable std::mutex busy_mu_;
  // Hash maps: Endpoint/Route and AddBusy sit on the per-message dispatch
  // path, where the O(log n) red-black walk was pure overhead. Everything
  // that *iterates* (AllNodes, OperationalNodes) sorts its output so node
  // orderings — and with them, recovery and schedule determinism — are
  // unchanged.
  std::unordered_map<NodeId, Peer> peers_;
  std::unordered_map<NodeId, std::uint64_t> busy_ns_;
  Metrics metrics_;
  /// Pre-registered "rpc.rtt_ns" handle: Metrics elements are
  /// reference-stable, so the hot wrappers record without a string hash.
  Histogram* rtt_hist_ = &metrics_.GetHistogram("rpc.rtt_ns");
  TraceSink* trace_ = nullptr;
  RetryPolicy retry_policy_;
  Random backoff_rng_{0xC10CBEEFull};
  FailureDetector detector_;
};

}  // namespace clog

#endif  // CLOG_NET_NETWORK_H_
