#include "net/message.h"

namespace clog {

std::string_view MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kLockPageRequest:
      return "lock_page_request";
    case MsgType::kLockPageReply:
      return "lock_page_reply";
    case MsgType::kCallback:
      return "callback";
    case MsgType::kCallbackReply:
      return "callback_reply";
    case MsgType::kUnlockNotice:
      return "unlock_notice";
    case MsgType::kPageShip:
      return "page_ship";
    case MsgType::kFlushNotify:
      return "flush_notify";
    case MsgType::kFlushRequest:
      return "flush_request";
    case MsgType::kLogShip:
      return "log_ship";
    case MsgType::kRecoveryQuery:
      return "recovery_query";
    case MsgType::kRecoveryQueryReply:
      return "recovery_query_reply";
    case MsgType::kFetchCachedPage:
      return "fetch_cached_page";
    case MsgType::kFetchCachedPageReply:
      return "fetch_cached_page_reply";
    case MsgType::kBuildPsnList:
      return "build_psn_list";
    case MsgType::kBuildPsnListReply:
      return "build_psn_list_reply";
    case MsgType::kRecoverPage:
      return "recover_page";
    case MsgType::kRecoverPageReply:
      return "recover_page_reply";
    case MsgType::kDptShip:
      return "dpt_ship";
    case MsgType::kNodeRecovered:
      return "node_recovered";
    case MsgType::kLogLossNotice:
      return "log_loss_notice";
    case MsgType::kPing:
      return "ping";
    case MsgType::kPingReply:
      return "ping_reply";
    case MsgType::kHandoffOffer:
      return "handoff_offer";
    case MsgType::kHandoffOfferReply:
      return "handoff_offer_reply";
    case MsgType::kHandoffQuery:
      return "handoff_query";
    case MsgType::kHandoffQueryReply:
      return "handoff_query_reply";
  }
  return "unknown";
}

std::string_view PeerHealthName(PeerHealth h) {
  switch (h) {
    case PeerHealth::kDown:
      return "down";
    case PeerHealth::kRecovering:
      return "recovering";
    case PeerHealth::kUp:
      return "up";
    case PeerHealth::kDeparted:
      return "departed";
  }
  return "unknown";
}

}  // namespace clog
