#include "net/executor.h"

#include <vector>

namespace clog {
namespace {

/// The worker currently executing on this thread, if any. Lets Run()
/// detect node-thread senders (reentrant wait) and self-sends (inline).
thread_local ThreadPerNodeExecutor* t_owner = nullptr;
thread_local void* t_worker = nullptr;

}  // namespace

ThreadPerNodeExecutor::ThreadPerNodeExecutor(std::size_t mailbox_capacity)
    : capacity_(mailbox_capacity == 0 ? 1 : mailbox_capacity) {}

ThreadPerNodeExecutor::~ThreadPerNodeExecutor() { StopAll(); }

ThreadPerNodeExecutor::Worker* ThreadPerNodeExecutor::FindWorker(NodeId id) {
  std::lock_guard<std::mutex> lk(registry_mu_);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

void ThreadPerNodeExecutor::StartNode(NodeId id) {
  Worker* w = nullptr;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    auto& slot = workers_[id];
    if (slot == nullptr) {
      slot = std::make_unique<Worker>();
      slot->id = id;
    }
    w = slot.get();
  }
  std::lock_guard<std::mutex> lk(w->mu);
  if (w->running) return;
  if (w->thread.joinable()) w->thread.join();  // Reap a stopped worker.
  w->running = true;
  w->stopping = false;
  w->thread = std::thread([this, w] { WorkerLoop(w); });
}

void ThreadPerNodeExecutor::StopLocked(Worker* w) {
  w->stopping = true;
  w->cv.notify_all();
  w->not_full.notify_all();
}

void ThreadPerNodeExecutor::StopNode(NodeId id) {
  Worker* w = FindWorker(id);
  if (w == nullptr) return;
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lk(w->mu);
    if (!w->running && !w->thread.joinable()) return;
    StopLocked(w);
    to_join = std::move(w->thread);
  }
  if (to_join.joinable()) to_join.join();
  // The worker is gone; reject everything it never got to.
  std::deque<Call*> orphans;
  {
    std::lock_guard<std::mutex> lk(w->mu);
    orphans.swap(w->mailbox);
    w->running = false;
  }
  for (Call* c : orphans) FinishCall(c, /*rejected=*/true);
}

void ThreadPerNodeExecutor::StopAll() {
  std::vector<NodeId> ids;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    for (const auto& [id, _] : workers_) ids.push_back(id);
  }
  for (NodeId id : ids) StopNode(id);
}

void ThreadPerNodeExecutor::Execute(Call* c) {
  (*c->fn)();
  FinishCall(c, /*rejected=*/false);
}

void ThreadPerNodeExecutor::FinishCall(Call* c, bool rejected) {
  // The waiter owns the Call (it lives on Run's stack) and may destroy it
  // the instant it observes the flag, so the flag must be set — and the
  // notify issued — under the mutex the waiter's predicate runs under.
  // The waiter can then only observe-and-destroy after this unlocks.
  std::atomic<bool>& flag = rejected ? c->rejected : c->done;
  if (Worker* home = c->home; home != nullptr) {
    std::lock_guard<std::mutex> lk(home->mu);
    flag.store(true);
    home->cv.notify_all();
  } else {
    std::lock_guard<std::mutex> lk(c->mu);
    flag.store(true);
    c->cv.notify_all();
  }
}

void ThreadPerNodeExecutor::WorkerLoop(Worker* w) {
  t_owner = this;
  t_worker = w;
  for (;;) {
    Call* c = nullptr;
    {
      std::unique_lock<std::mutex> lk(w->mu);
      w->cv.wait(lk, [&] { return w->stopping || !w->mailbox.empty(); });
      if (w->stopping) break;
      c = w->mailbox.front();
      w->mailbox.pop_front();
      w->not_full.notify_all();
    }
    Execute(c);
  }
  t_owner = nullptr;
  t_worker = nullptr;
}

bool ThreadPerNodeExecutor::Run(NodeId id, const Task& fn) {
  Worker* w = FindWorker(id);
  if (w == nullptr) return false;
  Worker* home = t_owner == this ? static_cast<Worker*>(t_worker) : nullptr;
  if (home == w) {
    // Self-send from the node's own thread: run inline, like the
    // simulation does. (Enqueue-and-drain would also work via the
    // reentrant wait below, but inline keeps self-RPCs cheap.)
    fn();
    return true;
  }

  Call call;
  call.fn = &fn;
  call.home = home;
  {
    std::unique_lock<std::mutex> lk(w->mu);
    w->not_full.wait(lk, [&] {
      return w->stopping || !w->running || w->mailbox.size() < capacity_;
    });
    if (w->stopping || !w->running) return false;
    w->mailbox.push_back(&call);
    w->cv.notify_all();
  }

  if (home == nullptr) {
    // External thread (test driver, bench producer): plain blocking wait.
    std::unique_lock<std::mutex> lk(call.mu);
    call.cv.wait(lk, [&] { return call.done.load() || call.rejected.load(); });
  } else {
    // Node thread awaiting a reply: drain our own mailbox while we wait so
    // a remote handler can call back into us (A -> B -> A) without
    // deadlock — the nested work runs on this thread, preserving the
    // simulation's synchronous recursion on real threads.
    for (;;) {
      Call* nested = nullptr;
      {
        std::unique_lock<std::mutex> lk(home->mu);
        home->cv.wait(lk, [&] {
          return call.done.load() || call.rejected.load() ||
                 !home->mailbox.empty();
        });
        if (call.done.load() || call.rejected.load()) break;
        nested = home->mailbox.front();
        home->mailbox.pop_front();
        home->not_full.notify_all();
      }
      Execute(nested);
    }
  }
  return call.done.load();
}

}  // namespace clog
