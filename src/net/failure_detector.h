#ifndef CLOG_NET_FAILURE_DETECTOR_H_
#define CLOG_NET_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "common/random.h"
#include "common/types.h"
#include "net/message.h"

/// \file
/// Availability-layer policy knobs and the passive failure-detector view
/// table (docs/availability.md). The detector never sends anything itself:
/// Network::ProbePeer feeds it ping results and event-driven facts
/// (NodeRecovered broadcasts, registration changes), and it answers "what
/// did `observer` last learn about `peer`, and is that knowledge fresh?".

namespace clog {

/// Tuning for the idempotent RPC envelope and the heartbeat detector.
/// All durations are simulated nanoseconds. Defaults are sized against
/// CostModel's ~20us per message so a full retry budget costs roughly one
/// disk write, not a whole workload.
struct RetryPolicy {
  /// Master switch. Disabled (the default) preserves the fail-fast
  /// semantics every pre-availability test was written against; Cluster
  /// turns it on.
  bool enabled = false;

  /// Total send attempts per message, including the first.
  int max_attempts = 4;

  /// Backoff before retry k (k >= 1) is
  ///   min(backoff_base_ns << (k-1), backoff_cap_ns)
  /// plus up to `jitter` of itself, drawn from a seeded PRNG.
  std::uint64_t backoff_base_ns = 200'000;
  std::uint64_t backoff_cap_ns = 5'000'000;

  /// Per-message deadline: once this much simulated time has elapsed since
  /// the first attempt, no further retries are made.
  std::uint64_t deadline_ns = 20'000'000;

  /// Jitter fraction in [0, 1]: each backoff is stretched by a uniform
  /// factor in [1, 1 + jitter].
  double jitter = 0.5;

  /// Seed for the jitter PRNG. Same seed => identical backoff schedule.
  std::uint64_t jitter_seed = 0xC10CBEEFull;

  /// A probe result younger than this is served from the view table
  /// instead of sending a fresh ping.
  std::uint64_t heartbeat_interval_ns = 1'000'000;

  /// How long a client keeps an owner parked without hearing NodeRecovered
  /// before it probes again (guards against a lost broadcast).
  std::uint64_t park_ttl_ns = 50'000'000;
};

/// Backoff duration before retry `attempt` (1-based), jittered from `rng`.
/// Exposed as a free function so the schedule is unit-testable.
std::uint64_t BackoffNanos(const RetryPolicy& policy, int attempt,
                           Random* rng);

/// Per-(observer, peer) cache of the last probe verdict. Purely passive
/// bookkeeping; freshness is judged against the simulated clock.
class FailureDetector {
 public:
  /// Records that `observer` learned `peer` is `health` at time `now`.
  void Record(NodeId observer, NodeId peer, PeerHealth health,
              std::uint64_t now);

  /// Returns the cached verdict if `observer` probed `peer` within
  /// `max_age_ns` of `now`; otherwise nullopt (caller must ping).
  std::optional<PeerHealth> Fresh(NodeId observer, NodeId peer,
                                  std::uint64_t now,
                                  std::uint64_t max_age_ns) const;

  /// Drops every observer's cached view of `peer`. Called when `peer`
  /// crashes, restarts, or re-registers: old verdicts are meaningless.
  void Invalidate(NodeId peer);

  void Clear() { views_.clear(); }

 private:
  struct View {
    PeerHealth health = PeerHealth::kDown;
    std::uint64_t checked_at = 0;
  };
  std::map<std::pair<NodeId, NodeId>, View> views_;
};

}  // namespace clog

#endif  // CLOG_NET_FAILURE_DETECTOR_H_
