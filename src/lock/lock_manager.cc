#include "lock/lock_manager.h"

#include "trace/trace_sink.h"

namespace clog {

GrantOutcome GlobalLockTable::TryGrant(PageId pid, NodeId node,
                                       LockMode mode) {
  Holders& holders = table_[pid];
  GrantOutcome out;
  for (const auto& [holder, held] : holders) {
    if (holder == node) continue;
    if (!Compatible(held, mode)) out.conflicting.push_back(holder);
  }
  if (!out.conflicting.empty()) {
    if (trace_ != nullptr) {
      trace_->Emit(trace_node_, TraceEventType::kLockWait, pid.Pack(), node,
                   static_cast<std::uint32_t>(mode));
    }
    if (holders.empty()) table_.erase(pid);
    return out;
  }
  LockMode& slot = holders[node];
  if (mode > slot) slot = mode;  // Upgrade or fresh grant.
  out.granted = true;
  return out;
}

void GlobalLockTable::Release(PageId pid, NodeId node) {
  auto it = table_.find(pid);
  if (it == table_.end()) return;
  it->second.erase(node);
  if (it->second.empty()) table_.erase(it);
}

void GlobalLockTable::Downgrade(PageId pid, NodeId node) {
  auto it = table_.find(pid);
  if (it == table_.end()) return;
  auto hit = it->second.find(node);
  if (hit != it->second.end() && hit->second == LockMode::kExclusive) {
    hit->second = LockMode::kShared;
  }
}

LockMode GlobalLockTable::HeldBy(PageId pid, NodeId node) const {
  auto it = table_.find(pid);
  if (it == table_.end()) return LockMode::kNone;
  auto hit = it->second.find(node);
  return hit == it->second.end() ? LockMode::kNone : hit->second;
}

std::vector<NodeId> GlobalLockTable::HoldersOf(PageId pid) const {
  std::vector<NodeId> out;
  auto it = table_.find(pid);
  if (it == table_.end()) return out;
  for (const auto& [node, _] : it->second) out.push_back(node);
  return out;
}

std::vector<LockListEntry> GlobalLockTable::LocksOf(NodeId node) const {
  std::vector<LockListEntry> out;
  for (const auto& [pid, holders] : table_) {
    auto hit = holders.find(node);
    if (hit != holders.end()) out.push_back(LockListEntry{pid, hit->second});
  }
  return out;
}

std::vector<LockListEntry> GlobalLockTable::ExclusiveLocksOf(
    NodeId node) const {
  std::vector<LockListEntry> out;
  for (const auto& [pid, holders] : table_) {
    auto hit = holders.find(node);
    if (hit != holders.end() && hit->second == LockMode::kExclusive) {
      out.push_back(LockListEntry{pid, hit->second});
    }
  }
  return out;
}

void GlobalLockTable::ReleaseSharedOf(NodeId node) {
  for (auto it = table_.begin(); it != table_.end();) {
    auto hit = it->second.find(node);
    if (hit != it->second.end() && hit->second == LockMode::kShared) {
      it->second.erase(hit);
    }
    if (it->second.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void GlobalLockTable::ReleaseAllOf(NodeId node) {
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.erase(node);
    if (it->second.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void GlobalLockTable::Install(PageId pid, NodeId node, LockMode mode) {
  if (mode == LockMode::kNone) return;
  table_[pid][node] = mode;
}

void GlobalLockTable::Clear() { table_.clear(); }

}  // namespace clog
