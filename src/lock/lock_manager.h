#ifndef CLOG_LOCK_LOCK_MANAGER_H_
#define CLOG_LOCK_LOCK_MANAGER_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/lock_mode.h"
#include "common/types.h"
#include "net/message.h"

/// \file
/// Owner-side global lock table. Each node runs one of these for the pages
/// it owns (paper Section 2.1: "Each node has a lock manager ... and
/// forwards the lock requests for data items owned by another node to that
/// node"). Holders are *nodes*: the callback locking protocol caches locks
/// at node granularity across transaction boundaries; the requester's
/// LockCache multiplexes local transactions onto the cached node lock.

namespace clog {

class TraceSink;

/// Outcome of a node-level lock request on the owner.
struct GrantOutcome {
  bool granted = false;
  /// When not granted: the holder nodes whose cached locks conflict and
  /// must be called back (excluding the requester itself).
  std::vector<NodeId> conflicting;
};

/// Tracks which node holds which mode on each owned page.
class GlobalLockTable {
 public:
  /// Attempts to grant `mode` on `pid` to `node`. An S->X upgrade by the
  /// sole holder succeeds in place. On conflict nothing changes and the
  /// conflicting holders are reported (the page service then runs
  /// callbacks and retries).
  GrantOutcome TryGrant(PageId pid, NodeId node, LockMode mode);

  /// Removes `node`'s lock on `pid` entirely.
  void Release(PageId pid, NodeId node);

  /// Demotes `node`'s lock on `pid` from X to S (callback in shared mode).
  void Downgrade(PageId pid, NodeId node);

  /// Mode `node` currently holds on `pid` (kNone if nothing).
  LockMode HeldBy(PageId pid, NodeId node) const;

  /// Nodes currently holding any lock on `pid`.
  std::vector<NodeId> HoldersOf(PageId pid) const;

  /// Every lock held by `node`, as wire entries.
  std::vector<LockListEntry> LocksOf(NodeId node) const;

  /// Exclusive locks held by `node` (recovery: these are retained while the
  /// shared ones are released, Section 2.3.3).
  std::vector<LockListEntry> ExclusiveLocksOf(NodeId node) const;

  /// Releases all *shared* locks held by `node` (crashed-node handling).
  void ReleaseSharedOf(NodeId node);

  /// Releases everything held by `node`.
  void ReleaseAllOf(NodeId node);

  /// Installs a lock verbatim (lock-table reconstruction during restart).
  void Install(PageId pid, NodeId node, LockMode mode);

  /// Drops the whole table (node crash loses volatile state).
  void Clear();

  std::size_t PageCount() const { return table_.size(); }

  /// Attaches a trace sink emitting LOCK_WAIT events as owner `node`
  /// whenever TryGrant reports a conflict (nullptr detaches). Not owned.
  void set_trace_sink(TraceSink* trace, NodeId node) {
    trace_ = trace;
    trace_node_ = node;
  }

 private:
  /// node -> mode for one page. std::map keeps iteration deterministic.
  using Holders = std::map<NodeId, LockMode>;

  std::unordered_map<PageId, Holders> table_;
  TraceSink* trace_ = nullptr;
  NodeId trace_node_ = kInvalidNodeId;
};

}  // namespace clog

#endif  // CLOG_LOCK_LOCK_MANAGER_H_
