#include "lock/lock_cache.h"

#include <algorithm>

namespace clog {

LockMode LockCache::TxnHold::Strongest() const {
  LockMode strongest = page_mode;
  for (const auto& [_, m] : records) strongest = std::max(strongest, m);
  return strongest;
}

bool LockCache::TxnHold::ConflictsWithPage(LockMode mode) const {
  // A page request sees every lock of the other transaction.
  return !Compatible(Strongest(), mode);
}

bool LockCache::TxnHold::ConflictsWithRecord(SlotId slot,
                                             LockMode mode) const {
  if (!Compatible(page_mode, mode)) return true;  // Its page lock covers all.
  auto it = records.find(slot);
  return it != records.end() && !Compatible(it->second, mode);
}

void LockCache::EraseIfEmpty(PageId pid) {
  auto it = cache_.find(pid);
  if (it != cache_.end() && it->second.node_mode == LockMode::kNone &&
      it->second.txns.empty()) {
    cache_.erase(it);
  }
}

LocalAcquire LockCache::AcquireForTxn(TxnId txn, PageId pid, LockMode mode) {
  LocalAcquire out;
  Entry& e = cache_[pid];

  // Local transaction-level conflicts come first: even if the node lock is
  // strong enough, two local transactions cannot both write the page.
  for (const auto& [other, hold] : e.txns) {
    if (other == txn) continue;
    if (hold.ConflictsWithPage(mode)) {
      out.outcome = LocalAcquire::Outcome::kLocalConflict;
      out.blockers.push_back(other);
    }
  }
  if (out.outcome == LocalAcquire::Outcome::kLocalConflict) {
    EraseIfEmpty(pid);
    return out;
  }

  if (e.node_mode < mode) {
    out.outcome = LocalAcquire::Outcome::kNeedNodeLock;
    EraseIfEmpty(pid);
    return out;
  }

  LockMode& slot = e.txns[txn].page_mode;
  if (mode > slot) slot = mode;
  out.outcome = LocalAcquire::Outcome::kGranted;
  return out;
}

LocalAcquire LockCache::AcquireRecordForTxn(TxnId txn, PageId pid,
                                            SlotId slot, LockMode mode) {
  LocalAcquire out;
  Entry& e = cache_[pid];

  for (const auto& [other, hold] : e.txns) {
    if (other == txn) continue;
    if (hold.ConflictsWithRecord(slot, mode)) {
      out.outcome = LocalAcquire::Outcome::kLocalConflict;
      out.blockers.push_back(other);
    }
  }
  if (out.outcome == LocalAcquire::Outcome::kLocalConflict) {
    EraseIfEmpty(pid);
    return out;
  }

  // Inter-node locking stays page-granular: a record write still needs the
  // node-level exclusive page lock (PSN total order depends on it).
  if (e.node_mode < mode) {
    out.outcome = LocalAcquire::Outcome::kNeedNodeLock;
    EraseIfEmpty(pid);
    return out;
  }

  LockMode& held = e.txns[txn].records[slot];
  if (mode > held) held = mode;
  out.outcome = LocalAcquire::Outcome::kGranted;
  return out;
}

void LockCache::RecordNodeLock(PageId pid, LockMode mode) {
  Entry& e = cache_[pid];
  if (mode > e.node_mode) e.node_mode = mode;
}

LockMode LockCache::NodeMode(PageId pid) const {
  auto it = cache_.find(pid);
  return it == cache_.end() ? LockMode::kNone : it->second.node_mode;
}

LockMode LockCache::TxnMode(TxnId txn, PageId pid) const {
  auto it = cache_.find(pid);
  if (it == cache_.end()) return LockMode::kNone;
  auto tit = it->second.txns.find(txn);
  return tit == it->second.txns.end() ? LockMode::kNone
                                      : tit->second.page_mode;
}

LockMode LockCache::TxnRecordMode(TxnId txn, PageId pid, SlotId slot) const {
  auto it = cache_.find(pid);
  if (it == cache_.end()) return LockMode::kNone;
  auto tit = it->second.txns.find(txn);
  if (tit == it->second.txns.end()) return LockMode::kNone;
  auto rit = tit->second.records.find(slot);
  return rit == tit->second.records.end() ? LockMode::kNone : rit->second;
}

void LockCache::ReleaseTxnLocks(TxnId txn) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    it->second.txns.erase(txn);
    if (it->second.node_mode == LockMode::kNone && it->second.txns.empty()) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

CallbackDecision LockCache::CanComply(PageId pid,
                                      LockMode downgrade_to) const {
  CallbackDecision out;
  auto it = cache_.find(pid);
  if (it == cache_.end()) {
    out.can_comply = true;
    return out;
  }
  for (const auto& [txn, hold] : it->second.txns) {
    if (hold.Empty()) continue;
    bool blocks = downgrade_to == LockMode::kNone
                      ? true  // Full release: any active user blocks.
                      : hold.Strongest() == LockMode::kExclusive;  // Demote.
    if (blocks) out.blocking_txns.push_back(txn);
  }
  out.can_comply = out.blocking_txns.empty();
  return out;
}

void LockCache::ApplyCallback(PageId pid, LockMode downgrade_to) {
  auto it = cache_.find(pid);
  if (it == cache_.end()) return;
  if (downgrade_to == LockMode::kNone) {
    cache_.erase(it);
  } else if (it->second.node_mode == LockMode::kExclusive) {
    it->second.node_mode = LockMode::kShared;
  }
}

void LockCache::DropNodeLock(PageId pid) {
  auto it = cache_.find(pid);
  if (it == cache_.end()) return;
  it->second.node_mode = LockMode::kNone;
  if (it->second.txns.empty()) cache_.erase(it);
}

std::vector<LockListEntry> LockCache::NodeLocks(NodeId owner) const {
  std::vector<LockListEntry> out;
  for (const auto& [pid, e] : cache_) {
    if (e.node_mode == LockMode::kNone) continue;
    if (owner != kInvalidNodeId && pid.owner != owner) continue;
    out.push_back(LockListEntry{pid, e.node_mode});
  }
  return out;
}

std::vector<PageId> LockCache::PagesWithActiveTxns() const {
  std::vector<PageId> out;
  for (const auto& [pid, e] : cache_) {
    if (!e.txns.empty()) out.push_back(pid);
  }
  return out;
}

void LockCache::Install(PageId pid, LockMode mode) {
  if (mode == LockMode::kNone) return;
  cache_[pid].node_mode = mode;
}

void LockCache::Clear() { cache_.clear(); }

}  // namespace clog
