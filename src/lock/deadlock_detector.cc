#include "lock/deadlock_detector.h"

namespace clog {

void DeadlockDetector::AddWaits(TxnId waiter,
                                const std::vector<TxnId>& holders) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& out = waits_[waiter];
  for (TxnId h : holders) {
    if (h != waiter && h != kInvalidTxnId) out.insert(h);
  }
}

void DeadlockDetector::ClearWaits(TxnId waiter) {
  std::lock_guard<std::mutex> lk(mu_);
  waits_.erase(waiter);
}

void DeadlockDetector::RemoveTxn(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  waits_.erase(txn);
  for (auto& [_, targets] : waits_) targets.erase(txn);
}

bool DeadlockDetector::CyclesThrough(TxnId waiter) const {
  std::lock_guard<std::mutex> lk(mu_);
  return CyclesThroughLocked(waiter);
}

bool DeadlockDetector::CyclesThroughLocked(TxnId waiter) const {
  // Iterative DFS from waiter looking for a path back to waiter.
  std::set<TxnId> visited;
  std::vector<TxnId> stack;
  auto it = waits_.find(waiter);
  if (it == waits_.end()) return false;
  for (TxnId t : it->second) stack.push_back(t);
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == waiter) return true;
    if (!visited.insert(cur).second) continue;
    auto cit = waits_.find(cur);
    if (cit == waits_.end()) continue;
    for (TxnId t : cit->second) stack.push_back(t);
  }
  return false;
}

std::size_t DeadlockDetector::EdgeCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [_, targets] : waits_) n += targets.size();
  return n;
}

}  // namespace clog
