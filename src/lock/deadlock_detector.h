#ifndef CLOG_LOCK_DEADLOCK_DETECTOR_H_
#define CLOG_LOCK_DEADLOCK_DETECTOR_H_

#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"

/// \file
/// Cluster-wide waits-for deadlock detection. The paper assumes strict 2PL
/// with lock waits; in the deterministic simulation a blocked request
/// returns Busy with the holders, the caller registers the waits-for edges
/// here, and a cycle through the waiter means the transaction must abort
/// (the classic distributed-deadlock resolution; which victim dies is policy
/// — we kill the requester, the simplest deterministic choice).

namespace clog {

/// Waits-for graph over transactions. Cluster-shared; in real-threads
/// mode concurrent transaction drivers mutate it, so every method takes
/// the internal mutex (the graph is tiny — edges live only while a
/// request is actually blocked).
class DeadlockDetector {
 public:
  /// Adds edges waiter -> each holder. Self-edges are ignored.
  void AddWaits(TxnId waiter, const std::vector<TxnId>& holders);

  /// Removes all outgoing edges of `waiter` (its request was granted or it
  /// gave up).
  void ClearWaits(TxnId waiter);

  /// Removes the transaction entirely (it ended); also drops edges
  /// pointing at it.
  void RemoveTxn(TxnId txn);

  /// True if `waiter` can reach itself through waits-for edges.
  bool CyclesThrough(TxnId waiter) const;

  std::size_t EdgeCount() const;

 private:
  bool CyclesThroughLocked(TxnId waiter) const;

  mutable std::mutex mu_;
  std::unordered_map<TxnId, std::set<TxnId>> waits_;
};

}  // namespace clog

#endif  // CLOG_LOCK_DEADLOCK_DETECTOR_H_
