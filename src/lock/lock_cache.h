#ifndef CLOG_LOCK_LOCK_CACHE_H_
#define CLOG_LOCK_LOCK_CACHE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/lock_mode.h"
#include "common/types.h"
#include "net/message.h"

/// \file
/// Requester-side lock cache: the locks this node holds (granted by owner
/// nodes, itself included) and which local transactions are using them.
/// Locks are retained across transaction boundaries (inter-transaction
/// caching, paper Section 2.1) and surrendered only through callbacks:
/// "cached locks that are called back in exclusive mode are released and
/// exclusive locks that are called back in shared mode are demoted".
///
/// Two granularities of *transaction-level* locks are supported on top of
/// the node-level page lock:
///   - page locks (the paper's baseline), and
///   - record locks (the Section 4 / EDBT'96 fine-granularity extension):
///     local transactions can concurrently use different records of the
///     same page. Inter-node locking stays page-granular, which preserves
///     the per-page PSN total order the recovery algorithms require.

namespace clog {

/// Result of a local (transaction-level) acquisition attempt.
struct LocalAcquire {
  enum class Outcome {
    kGranted,        ///< Cached node lock covered it; txn now holds it.
    kNeedNodeLock,   ///< Must ask the owner for `mode` at node level first.
    kLocalConflict,  ///< Another local active transaction conflicts.
  };
  Outcome outcome = Outcome::kGranted;
  std::vector<TxnId> blockers;  ///< For kLocalConflict.
};

/// What a callback can do right now.
struct CallbackDecision {
  bool can_comply = false;
  std::vector<TxnId> blocking_txns;  ///< Active local users, when blocked.
};

/// Per-node cache of held locks.
class LockCache {
 public:
  /// Attempts to grant a page-granularity `mode` on `pid` to local
  /// transaction `txn` from the cached node-level lock. Does not talk to
  /// the owner; on kNeedNodeLock the caller requests the node lock, calls
  /// RecordNodeLock, and retries. A page lock conflicts with every
  /// incompatible page or record lock of other transactions.
  LocalAcquire AcquireForTxn(TxnId txn, PageId pid, LockMode mode);

  /// Record-granularity variant (fine-granularity extension): conflicts
  /// only with incompatible locks on the same slot, or with incompatible
  /// page-granularity locks of other transactions.
  LocalAcquire AcquireRecordForTxn(TxnId txn, PageId pid, SlotId slot,
                                   LockMode mode);

  /// Records that the owner granted this node `mode` on `pid`.
  void RecordNodeLock(PageId pid, LockMode mode);

  /// Mode this node holds on `pid` at node level.
  LockMode NodeMode(PageId pid) const;

  /// Page-granularity mode `txn` holds on `pid`.
  LockMode TxnMode(TxnId txn, PageId pid) const;

  /// Record-granularity mode `txn` holds on `pid`/`slot`.
  LockMode TxnRecordMode(TxnId txn, PageId pid, SlotId slot) const;

  /// Releases every lock `txn` holds (transaction end, commit or abort).
  /// Node-level cached locks are retained (strict 2PL releases transaction
  /// locks; inter-transaction caching keeps the node locks).
  void ReleaseTxnLocks(TxnId txn);

  /// Can a callback demanding `downgrade_to` (kNone = release, kShared =
  /// demote) proceed, or do active local transactions block it?
  CallbackDecision CanComply(PageId pid, LockMode downgrade_to) const;

  /// Applies a complied callback to the cached state.
  void ApplyCallback(PageId pid, LockMode downgrade_to);

  /// Drops the cached node lock on `pid` (voluntary release).
  void DropNodeLock(PageId pid);

  /// All node-level locks, optionally only those on pages owned by `owner`
  /// (recovery: "the list of locks Nr had acquired from the crashed node").
  std::vector<LockListEntry> NodeLocks(NodeId owner = kInvalidNodeId) const;

  /// Pages on which any local transaction currently holds a lock.
  std::vector<PageId> PagesWithActiveTxns() const;

  /// Installs a node-level lock verbatim (restart reconstruction).
  void Install(PageId pid, LockMode mode);

  /// Loses everything (node crash).
  void Clear();

  std::size_t size() const { return cache_.size(); }

 private:
  /// What one transaction holds on one page.
  struct TxnHold {
    LockMode page_mode = LockMode::kNone;
    std::map<SlotId, LockMode> records;

    bool Empty() const {
      return page_mode == LockMode::kNone && records.empty();
    }
    LockMode Strongest() const;
    /// True if this hold conflicts with a page-granularity request `mode`.
    bool ConflictsWithPage(LockMode mode) const;
    /// True if this hold conflicts with a record request on `slot`.
    bool ConflictsWithRecord(SlotId slot, LockMode mode) const;
  };

  struct Entry {
    LockMode node_mode = LockMode::kNone;
    std::map<TxnId, TxnHold> txns;
  };

  void EraseIfEmpty(PageId pid);

  std::unordered_map<PageId, Entry> cache_;
};

}  // namespace clog

#endif  // CLOG_LOCK_LOCK_CACHE_H_
