#ifndef CLOG_STORAGE_DISK_MANAGER_H_
#define CLOG_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

/// \file
/// Durable page store for one node's database, backed by a real file and
/// accessed with pread/pwrite. A simulated node crash discards all volatile
/// state but the file persists, so recovery tests exercise true durability.

namespace clog {

class FaultInjector;

/// Owns one database file; pages are addressed by page number (the page_no
/// component of PageId). Not thread-safe; the cluster simulation is
/// single-threaded by design (DESIGN.md Section 4).
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if absent) the database file.
  Status Open(const std::string& path);

  /// Flushes and closes the file.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Reads page `page_no` into `*page` and verifies its checksum.
  Status ReadPage(std::uint32_t page_no, Page* page);

  /// Seals the page checksum and writes it at `page_no`, extending the file
  /// if needed. If `sync`, the write is followed by fdatasync.
  Status WritePage(std::uint32_t page_no, Page* page, bool sync);

  /// fdatasyncs the file.
  Status Sync();

  /// Number of whole pages currently in the file.
  Result<std::uint32_t> NumPages() const;

  /// Cumulative counters for the benchmark harness.
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t syncs() const { return syncs_; }

  /// Attaches a fault injector consulted before every read/write/sync as
  /// `node` (nullptr detaches). Not owned.
  void set_fault_injector(FaultInjector* fault, NodeId node) {
    fault_ = fault;
    node_ = node;
  }

 private:
  std::string path_;
  int fd_ = -1;
  FaultInjector* fault_ = nullptr;
  NodeId node_ = kInvalidNodeId;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t syncs_ = 0;
};

}  // namespace clog

#endif  // CLOG_STORAGE_DISK_MANAGER_H_
