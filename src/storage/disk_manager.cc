#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/fault_injector.h"

namespace clog {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::Open(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("already open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(Errno("open " + path));
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ < 0) return Status::OK();
  Status st = Sync();
  ::close(fd_);
  fd_ = -1;
  return st;
}

Status DiskManager::ReadPage(std::uint32_t page_no, Page* page) {
  if (fd_ < 0) return Status::FailedPrecondition("not open");
  if (fault_ != nullptr && fault_->OnPageRead(node_)) {
    // Transient: the arm is cleared, so the caller's retry goes through.
    return Status::IOError("fault injection: page read failed");
  }
  ssize_t n = ::pread(fd_, page->data(), kPageSize,
                      static_cast<off_t>(page_no) * kPageSize);
  if (n < 0) return Status::IOError(Errno("pread " + path_));
  if (static_cast<std::size_t>(n) != kPageSize) {
    return Status::NotFound("page " + std::to_string(page_no) +
                            " beyond end of " + path_);
  }
  ++reads_;
  return page->VerifyChecksum();
}

Status DiskManager::WritePage(std::uint32_t page_no, Page* page, bool sync) {
  if (fd_ < 0) return Status::FailedPrecondition("not open");
  if (fault_ != nullptr) {
    IoFault f = fault_->OnPageWrite(node_);
    if (f == IoFault::kFailPageWrite) {
      // Clean failure: no byte reaches the file.
      return Status::IOError("fault injection: page write failed");
    }
    if (f == IoFault::kTornPageWrite) {
      // Only the first half of the sealed page reaches the platter; the
      // next read of this slot fails its checksum (a crash artifact).
      page->SealChecksum();
      ::pwrite(fd_, page->data(), kPageSize / 2,
               static_cast<off_t>(page_no) * kPageSize);
      return Status::IOError("fault injection: page write torn");
    }
  }
  page->SealChecksum();
  ssize_t n = ::pwrite(fd_, page->data(), kPageSize,
                       static_cast<off_t>(page_no) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(Errno("pwrite " + path_));
  }
  ++writes_;
  if (sync) return Sync();
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("not open");
  if (fault_ != nullptr && fault_->OnDiskSync(node_)) {
    return Status::IOError("fault injection: fdatasync failed");
  }
  if (::fdatasync(fd_) != 0) return Status::IOError(Errno("fdatasync"));
  ++syncs_;
  return Status::OK();
}

Result<std::uint32_t> DiskManager::NumPages() const {
  if (fd_ < 0) return Status::FailedPrecondition("not open");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Status::IOError(Errno("fstat"));
  return static_cast<std::uint32_t>(st.st_size / kPageSize);
}

}  // namespace clog
