#include "storage/page.h"

#include "common/crc32c.h"

namespace clog {

Page::Page() : frame_(new char[kPageSize]) {
  std::memset(frame_.get(), 0, kPageSize);
  PageHeader* h = mutable_header();
  h->magic = PageHeader::kMagic;
}

void Page::Format(PageId id, PageType type, Psn psn_seed) {
  std::memset(frame_.get(), 0, kPageSize);
  PageHeader* h = mutable_header();
  h->magic = PageHeader::kMagic;
  h->packed_id = id.Pack();
  h->psn = psn_seed;
  h->page_lsn = kNullLsn;
  h->type = static_cast<std::uint16_t>(type);
}

void Page::SealChecksum() {
  PageHeader* h = mutable_header();
  h->checksum = crc32c::Value(frame_.get() + 8, kPageSize - 8);
}

Status Page::VerifyChecksum() const {
  const PageHeader& h = header();
  if (h.magic != PageHeader::kMagic) {
    return Status::Corruption("bad page magic");
  }
  std::uint32_t expect = crc32c::Value(frame_.get() + 8, kPageSize - 8);
  if (expect != h.checksum) {
    return Status::Corruption("page checksum mismatch for page " +
                              PageId::Unpack(h.packed_id).ToString());
  }
  return Status::OK();
}

void Page::CopyFrom(const Page& other) {
  std::memcpy(frame_.get(), other.frame_.get(), kPageSize);
}

}  // namespace clog
