#ifndef CLOG_STORAGE_SLOTTED_PAGE_H_
#define CLOG_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

/// \file
/// Record manager for data pages: the classic slotted-page layout. Records
/// are addressed by (PageId, SlotId). The transaction layer logs record
/// operations physiologically (page-oriented redo keyed on PSN, record-level
/// undo), so SlottedPage must be able to re-insert a record into a specific
/// slot during undo/redo.
///
/// Body layout (offsets relative to Page::body()):
///   [0,2)  slot_count  (u16)
///   [2,4)  free_end    (u16)  start of the record heap, grows downward
///   [4, 4 + 4*slot_count)  slot directory: {u16 offset, u16 length} each
///   [free_end, BodySize())  record payloads
/// A slot with offset == kDeadSlot is empty (deleted or never used).

namespace clog {

/// A typed view over a Page of PageType::kData. The view does not own the
/// page; it reads and mutates the page body in place. Callers are
/// responsible for logging and PSN bumps; SlottedPage is pure layout.
class SlottedPage {
 public:
  static constexpr std::uint16_t kDeadSlot = 0xFFFF;

  /// Wraps `page`. The page must be formatted as kData (InitBody() once
  /// after Page::Format()).
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Initializes an empty slot directory. Call exactly once per fresh page.
  void InitBody();

  /// Number of slot directory entries (including dead ones).
  std::uint16_t SlotCount() const;

  /// Number of live records.
  std::uint16_t LiveRecords() const;

  /// Bytes available for a new record (assuming one new slot entry),
  /// counting space reclaimable by compaction.
  std::size_t FreeSpace() const;

  /// Largest payload Insert() can currently accept.
  std::size_t MaxInsertSize() const;

  /// Inserts a record, reusing a dead slot if one exists.
  Result<SlotId> Insert(Slice payload);

  /// The slot Insert() would use right now (lets the caller write the log
  /// record before mutating the page).
  SlotId PeekInsertSlot() const;

  /// Inserts a record into a specific slot; the slot must be dead or beyond
  /// the current directory (used by redo and by undo of delete).
  Status InsertAt(SlotId slot, Slice payload);

  /// Reads the record in `slot`. The returned slice points into the page
  /// and is invalidated by any mutation.
  Result<Slice> Read(SlotId slot) const;

  /// Replaces the payload of an existing record (size may change).
  Status Update(SlotId slot, Slice payload);

  /// Deletes the record in `slot` (slot becomes dead and reusable).
  Status Delete(SlotId slot);

  /// True if `slot` currently holds a record.
  bool IsLive(SlotId slot) const;

 private:
  std::uint16_t GetU16(std::size_t off) const;
  void SetU16(std::size_t off, std::uint16_t v);
  std::uint16_t SlotOffset(SlotId s) const { return GetU16(4 + 4 * s); }
  std::uint16_t SlotLength(SlotId s) const { return GetU16(4 + 4 * s + 2); }
  void SetSlot(SlotId s, std::uint16_t off, std::uint16_t len);
  std::uint16_t FreeEnd() const { return GetU16(2); }
  void SetFreeEnd(std::uint16_t v) { SetU16(2, v); }
  std::size_t DirectoryEnd() const { return 4 + 4 * SlotCount(); }
  std::size_t ContiguousFree() const { return FreeEnd() - DirectoryEnd(); }

  /// Slides all live payloads to the end of the body, squeezing out holes.
  void Compact();

  /// Carves `len` bytes out of the record heap; requires contiguous room.
  std::uint16_t AllocatePayload(Slice payload);

  Page* page_;
};

}  // namespace clog

#endif  // CLOG_STORAGE_SLOTTED_PAGE_H_
