#ifndef CLOG_STORAGE_SPACE_MAP_H_
#define CLOG_STORAGE_SPACE_MAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

/// \file
/// Space allocation map for one node's database, including the PSN seeding
/// technique the paper adopts from ARIES/CSA [15] (Section 2.1): "the PSN
/// stored on the space allocation map containing information about the page
/// in question is assigned to the PSN field of the page" when the page is
/// allocated. Seeding a reallocated page's PSN past the PSNs of its previous
/// life keeps per-page PSNs monotone forever, which the distributed recovery
/// ordering depends on.

namespace clog {

/// Persistent allocation state. The map is tiny relative to the database,
/// so it is rewritten wholesale (write-temp + rename) on every mutation;
/// allocation and deallocation are rare compared to page updates.
class SpaceMap {
 public:
  /// Loads the map from `path`, starting empty if the file does not exist.
  Status Open(const std::string& path);

  /// Allocates the lowest free page number and returns it together with the
  /// PSN seed the new page must be formatted with. Durable before return.
  Result<std::uint32_t> Allocate();

  /// Marks `page_no` free and records `last_psn + 1` as the PSN seed for
  /// its next incarnation. Durable before return.
  Status Free(std::uint32_t page_no, Psn last_psn);

  /// True iff `page_no` is currently allocated.
  bool IsAllocated(std::uint32_t page_no) const;

  /// PSN seed to format `page_no` with (valid for allocated pages too: it is
  /// the seed the current incarnation started from).
  Psn PsnSeed(std::uint32_t page_no) const;

  /// All currently allocated page numbers, ascending.
  std::vector<std::uint32_t> AllocatedPages() const;

  std::size_t AllocatedCount() const;

 private:
  Status Persist() const;
  Status Load();

  struct Entry {
    bool allocated = false;
    Psn psn_seed = 0;
  };

  std::string path_;
  std::map<std::uint32_t, Entry> entries_;
  std::uint32_t next_fresh_ = 0;  ///< Lowest never-used page number.
};

}  // namespace clog

#endif  // CLOG_STORAGE_SPACE_MAP_H_
