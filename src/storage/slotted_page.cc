#include "storage/slotted_page.h"

#include <cstring>
#include <vector>

namespace clog {

void SlottedPage::InitBody() {
  SetU16(0, 0);                                       // slot_count
  SetFreeEnd(static_cast<std::uint16_t>(Page::BodySize()));
}

std::uint16_t SlottedPage::GetU16(std::size_t off) const {
  std::uint16_t v;
  std::memcpy(&v, page_->body() + off, 2);
  return v;
}

void SlottedPage::SetU16(std::size_t off, std::uint16_t v) {
  std::memcpy(page_->body() + off, &v, 2);
}

void SlottedPage::SetSlot(SlotId s, std::uint16_t off, std::uint16_t len) {
  SetU16(4 + 4 * s, off);
  SetU16(4 + 4 * s + 2, len);
}

std::uint16_t SlottedPage::SlotCount() const { return GetU16(0); }

std::uint16_t SlottedPage::LiveRecords() const {
  std::uint16_t live = 0;
  for (SlotId s = 0; s < SlotCount(); ++s) {
    if (SlotOffset(s) != kDeadSlot) ++live;
  }
  return live;
}

std::size_t SlottedPage::FreeSpace() const {
  // Total payload bytes currently live.
  std::size_t used = 0;
  for (SlotId s = 0; s < SlotCount(); ++s) {
    if (SlotOffset(s) != kDeadSlot) used += SlotLength(s);
  }
  std::size_t heap = Page::BodySize() - DirectoryEnd();
  return heap > used ? heap - used : 0;
}

std::size_t SlottedPage::MaxInsertSize() const {
  std::size_t fs = FreeSpace();
  // A new slot entry may be needed; reserve 4 bytes unless a dead slot
  // exists.
  bool has_dead = false;
  for (SlotId s = 0; s < SlotCount(); ++s) {
    if (SlotOffset(s) == kDeadSlot) {
      has_dead = true;
      break;
    }
  }
  std::size_t overhead = has_dead ? 0 : 4;
  return fs > overhead ? fs - overhead : 0;
}

bool SlottedPage::IsLive(SlotId slot) const {
  return slot < SlotCount() && SlotOffset(slot) != kDeadSlot;
}

std::uint16_t SlottedPage::AllocatePayload(Slice payload) {
  std::uint16_t off =
      static_cast<std::uint16_t>(FreeEnd() - payload.size());
  std::memcpy(page_->body() + off, payload.data(), payload.size());
  SetFreeEnd(off);
  return off;
}

void SlottedPage::Compact() {
  struct Rec {
    SlotId slot;
    std::vector<char> bytes;
  };
  std::vector<Rec> live;
  for (SlotId s = 0; s < SlotCount(); ++s) {
    if (SlotOffset(s) == kDeadSlot) continue;
    const char* p = page_->body() + SlotOffset(s);
    live.push_back(Rec{s, std::vector<char>(p, p + SlotLength(s))});
  }
  SetFreeEnd(static_cast<std::uint16_t>(Page::BodySize()));
  for (const Rec& r : live) {
    std::uint16_t off = AllocatePayload(Slice(r.bytes.data(), r.bytes.size()));
    SetSlot(r.slot, off, static_cast<std::uint16_t>(r.bytes.size()));
  }
}

SlotId SlottedPage::PeekInsertSlot() const {
  for (SlotId s = 0; s < SlotCount(); ++s) {
    if (SlotOffset(s) == kDeadSlot) return s;
  }
  return SlotCount();
}

Result<SlotId> SlottedPage::Insert(Slice payload) {
  // Prefer reusing a dead slot.
  SlotId target = SlotCount();
  for (SlotId s = 0; s < SlotCount(); ++s) {
    if (SlotOffset(s) == kDeadSlot) {
      target = s;
      break;
    }
  }
  Status st = InsertAt(target, payload);
  if (!st.ok()) return st;
  return target;
}

Status SlottedPage::InsertAt(SlotId slot, Slice payload) {
  if (payload.size() > Page::BodySize()) {
    return Status::InvalidArgument("record larger than page body");
  }
  if (slot < SlotCount() && SlotOffset(slot) != kDeadSlot) {
    return Status::FailedPrecondition("slot already occupied");
  }
  std::size_t new_dir_entries =
      slot >= SlotCount() ? (slot - SlotCount() + 1) : 0;
  std::size_t need = payload.size() + 4 * new_dir_entries;
  if (need > FreeSpace()) {
    return Status::FailedPrecondition("page full");
  }
  // Grow the directory first (new entries start dead).
  if (new_dir_entries > 0) {
    std::uint16_t old_count = SlotCount();
    std::uint16_t new_count = static_cast<std::uint16_t>(slot + 1);
    if (DirectoryEnd() + 4 * new_dir_entries > FreeEnd()) Compact();
    SetU16(0, new_count);
    for (SlotId s = old_count; s < new_count; ++s) SetSlot(s, kDeadSlot, 0);
  }
  if (ContiguousFree() < payload.size()) Compact();
  std::uint16_t off = AllocatePayload(payload);
  SetSlot(slot, off, static_cast<std::uint16_t>(payload.size()));
  return Status::OK();
}

Result<Slice> SlottedPage::Read(SlotId slot) const {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  return Slice(page_->body() + SlotOffset(slot), SlotLength(slot));
}

Status SlottedPage::Update(SlotId slot, Slice payload) {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  std::uint16_t old_len = SlotLength(slot);
  if (payload.size() <= old_len) {
    std::memcpy(page_->body() + SlotOffset(slot), payload.data(),
                payload.size());
    SetSlot(slot, SlotOffset(slot), static_cast<std::uint16_t>(payload.size()));
    return Status::OK();
  }
  if (payload.size() - old_len > FreeSpace()) {
    return Status::FailedPrecondition("page full");
  }
  SetSlot(slot, kDeadSlot, 0);
  if (ContiguousFree() < payload.size()) Compact();
  std::uint16_t off = AllocatePayload(payload);
  SetSlot(slot, off, static_cast<std::uint16_t>(payload.size()));
  return Status::OK();
}

Status SlottedPage::Delete(SlotId slot) {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  SetSlot(slot, kDeadSlot, 0);
  return Status::OK();
}

}  // namespace clog
