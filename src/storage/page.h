#ifndef CLOG_STORAGE_PAGE_H_
#define CLOG_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/status.h"
#include "common/types.h"

/// \file
/// In-memory image of a database page. Every page starts with a fixed
/// header carrying the page id and the page sequence number (PSN) that the
/// paper's recovery algorithms are built on (Section 2.1): the PSN is
/// incremented by one every time the page is updated, and the PSN a page had
/// *before* an update is stored in the update's log record.

namespace clog {

/// Discriminates how the page body is interpreted.
enum class PageType : std::uint16_t {
  kFree = 0,   ///< Unallocated / zeroed.
  kData = 1,   ///< Slotted record page.
};

/// Byte layout of the fixed page header (little-endian on disk; this struct
/// is only the logical view, serialization is explicit).
struct PageHeader {
  static constexpr std::uint32_t kMagic = 0x434C4F47;  // "CLOG"
  static constexpr std::size_t kSize = 40;

  std::uint32_t magic = kMagic;
  std::uint32_t checksum = 0;   ///< CRC32C of bytes [8, kPageSize).
  std::uint64_t packed_id = 0;  ///< PageId::Pack() of this page.
  Psn psn = 0;                  ///< Update counter (paper Section 2.1).
  Lsn page_lsn = kNullLsn;      ///< LSN of last local log record (WAL check).
  std::uint16_t type = 0;       ///< PageType.
  std::uint16_t reserved = 0;
  std::uint32_t reserved2 = 0;
};
static_assert(PageHeader::kSize >= sizeof(PageHeader));

/// A kPageSize byte frame plus typed access to the header. Page is the unit
/// of inter-node transfer, locking, and callback (paper Section 2.1).
class Page {
 public:
  Page();

  /// Zeroes the frame and formats the header for `id` with initial PSN
  /// `psn_seed` (taken from the owner's space allocation map, following the
  /// ARIES/CSA technique the paper adopts).
  void Format(PageId id, PageType type, Psn psn_seed);

  PageId id() const { return PageId::Unpack(header().packed_id); }
  Psn psn() const { return header().psn; }
  PageType type() const { return static_cast<PageType>(header().type); }
  Lsn page_lsn() const { return header().page_lsn; }

  void set_psn(Psn psn) { mutable_header()->psn = psn; }
  void set_page_lsn(Lsn lsn) { mutable_header()->page_lsn = lsn; }

  /// Increments the PSN by one (call once per logged update).
  void BumpPsn() { ++mutable_header()->psn; }

  /// Raw frame access.
  char* data() { return frame_.get(); }
  const char* data() const { return frame_.get(); }

  /// Body (bytes after the header) available to the record manager.
  char* body() { return frame_.get() + PageHeader::kSize; }
  const char* body() const { return frame_.get() + PageHeader::kSize; }
  static constexpr std::size_t BodySize() {
    return kPageSize - PageHeader::kSize;
  }

  /// Recomputes and stores the header checksum; call before writing to disk
  /// or shipping across the network.
  void SealChecksum();

  /// Verifies the stored checksum and magic; Corruption on mismatch.
  Status VerifyChecksum() const;

  /// Deep copy of the whole frame.
  void CopyFrom(const Page& other);

 private:
  const PageHeader& header() const {
    return *reinterpret_cast<const PageHeader*>(frame_.get());
  }
  PageHeader* mutable_header() {
    return reinterpret_cast<PageHeader*>(frame_.get());
  }

  std::unique_ptr<char[]> frame_;
};

}  // namespace clog

#endif  // CLOG_STORAGE_PAGE_H_
