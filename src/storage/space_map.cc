#include "storage/space_map.h"

#include <cstdio>

#include <fstream>

#include "common/codec.h"
#include "common/crc32c.h"

namespace clog {

namespace {
constexpr std::uint32_t kMapMagic = 0x534D4150;  // "SMAP"
}  // namespace

Status SpaceMap::Open(const std::string& path) {
  path_ = path;
  entries_.clear();
  next_fresh_ = 0;
  return Load();
}

Status SpaceMap::Load() {
  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) return Status::OK();  // Fresh database.
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Decoder dec(blob);
  std::uint32_t magic = 0, crc = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kMapMagic) return Status::Corruption("bad space map magic");
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (crc32c::Value(blob.data() + 8, blob.size() - 8) != crc) {
    return Status::Corruption("space map checksum mismatch");
  }
  std::uint32_t fresh = 0;
  std::uint64_t count = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&fresh));
  CLOG_RETURN_IF_ERROR(dec.GetVarint64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t page_no = 0;
    std::uint8_t allocated = 0;
    std::uint64_t seed = 0;
    CLOG_RETURN_IF_ERROR(dec.GetU32(&page_no));
    CLOG_RETURN_IF_ERROR(dec.GetU8(&allocated));
    CLOG_RETURN_IF_ERROR(dec.GetVarint64(&seed));
    entries_[page_no] = Entry{allocated != 0, seed};
  }
  next_fresh_ = fresh;
  return Status::OK();
}

Status SpaceMap::Persist() const {
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kMapMagic);
  enc.PutU32(0);  // crc placeholder
  enc.PutU32(next_fresh_);
  enc.PutVarint64(entries_.size());
  for (const auto& [page_no, e] : entries_) {
    enc.PutU32(page_no);
    enc.PutU8(e.allocated ? 1 : 0);
    enc.PutVarint64(e.psn_seed);
  }
  std::uint32_t crc = crc32c::Value(blob.data() + 8, blob.size() - 8);
  blob[4] = static_cast<char>(crc & 0xFF);
  blob[5] = static_cast<char>((crc >> 8) & 0xFF);
  blob[6] = static_cast<char>((crc >> 16) & 0xFF);
  blob[7] = static_cast<char>((crc >> 24) & 0xFF);

  std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return Status::IOError("open " + tmp);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) return Status::IOError("write " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename " + tmp);
  }
  return Status::OK();
}

Result<std::uint32_t> SpaceMap::Allocate() {
  // Reuse the lowest freed page if any, else take a fresh number.
  std::uint32_t chosen = next_fresh_;
  bool reused = false;
  for (const auto& [page_no, e] : entries_) {
    if (!e.allocated) {
      chosen = page_no;
      reused = true;
      break;
    }
  }
  if (reused) {
    entries_[chosen].allocated = true;
  } else {
    entries_[chosen] = Entry{true, 0};
    next_fresh_ = chosen + 1;
  }
  Status st = Persist();
  if (!st.ok()) return st;
  return chosen;
}

Status SpaceMap::Free(std::uint32_t page_no, Psn last_psn) {
  auto it = entries_.find(page_no);
  if (it == entries_.end() || !it->second.allocated) {
    return Status::NotFound("page not allocated: " + std::to_string(page_no));
  }
  it->second.allocated = false;
  it->second.psn_seed = last_psn + 1;
  return Persist();
}

bool SpaceMap::IsAllocated(std::uint32_t page_no) const {
  auto it = entries_.find(page_no);
  return it != entries_.end() && it->second.allocated;
}

Psn SpaceMap::PsnSeed(std::uint32_t page_no) const {
  auto it = entries_.find(page_no);
  return it == entries_.end() ? 0 : it->second.psn_seed;
}

std::vector<std::uint32_t> SpaceMap::AllocatedPages() const {
  std::vector<std::uint32_t> out;
  for (const auto& [page_no, e] : entries_) {
    if (e.allocated) out.push_back(page_no);
  }
  return out;
}

std::size_t SpaceMap::AllocatedCount() const {
  std::size_t n = 0;
  for (const auto& [_, e] : entries_) n += e.allocated;
  return n;
}

}  // namespace clog
