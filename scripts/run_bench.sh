#!/usr/bin/env bash
# Bench-regression harness (docs/performance.md).
#
# Runs the gated perf benches and writes their results as
#   BENCH_micro.json   google-benchmark JSON: CRC32C + log-append throughput
#   BENCH_e1.json      simulated commit-cost + group-commit metrics
#   BENCH_restore.json instant-restore availability metrics (recorded only)
#   BENCH_e2.json      per-node scalability with/without membership churn
#                      (recorded only)
# at the repo root, then compares them against the committed baselines
# (the versions of those files at git HEAD) with
# scripts/check_bench_regression.py. A >20% throughput regression fails.
#
# Usage: scripts/run_bench.sh [--build-dir=DIR] [--out=DIR] [--smoke]
#                             [--no-check] [--real]
#   --smoke     quick pass: tiny micro filter, results to a temp dir,
#               JSON schema validated but not compared (wall-clock noise
#               has no place in a smoke gate). Used by `ctest -L bench_smoke`.
#   --no-check  produce the JSON but skip the baseline comparison — use
#               this when refreshing the committed baselines.
#   --real      also run the real-threads wall-clock benches
#               (bench_real_mode) into BENCH_real.json. Recorded, never
#               compared: wall clock is machine-dependent
#               (docs/performance.md, docs/architecture_modes.md).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
OUT_DIR="$ROOT"
SMOKE=0
CHECK=1
REAL=0
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --out=*) OUT_DIR="${arg#--out=}" ;;
    --smoke) SMOKE=1 ;;
    --no-check) CHECK=0 ;;
    --real) REAL=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

MICRO="$BUILD_DIR/bench/bench_micro_ops"
E1="$BUILD_DIR/bench/bench_e1_commit_cost"
if [ ! -x "$MICRO" ] || [ ! -x "$E1" ]; then
  echo "error: bench binaries not found under $BUILD_DIR/bench; build first:" >&2
  echo "  cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
  exit 1
fi

# Baseline numbers must come from an optimized build: a Debug-build bench
# is 5-20x off, and committing one as a baseline poisons every later
# comparison. Smoke runs only validate JSON shape, so they are exempt.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
if [ "$SMOKE" -eq 0 ]; then
  case "$BUILD_TYPE" in
    Release|RelWithDebInfo) ;;
    *)
      echo "error: $BUILD_DIR is a '${BUILD_TYPE:-unknown}' build;" \
        "bench baselines require Release or RelWithDebInfo:" >&2
      echo "  cmake -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release &&" \
        "cmake --build $BUILD_DIR" >&2
      echo "(--smoke runs are exempt: they only validate JSON shape)" >&2
      exit 1
      ;;
  esac
fi
mkdir -p "$OUT_DIR"

# Only throughput-counter benches are gated: they carry bytes_per_second,
# which the checker compares. Wall-clock-only benches stay out of the gate.
FILTER='BM_Crc32c|BM_Crc32cPortable|BM_LogAppend/'
if [ "$SMOKE" -eq 1 ]; then
  FILTER='BM_Crc32c/4096|BM_Crc32cPortable/4096'
fi

echo "== micro benches -> $OUT_DIR/BENCH_micro.json"
"$MICRO" --benchmark_filter="$FILTER" --benchmark_format=json \
  > "$OUT_DIR/BENCH_micro.json"

echo "== e1 commit cost -> $OUT_DIR/BENCH_e1.json"
"$E1" --json="$OUT_DIR/BENCH_e1.json"

# Real-threads wall-clock benches: recorded into BENCH_real.json, never
# gated against a baseline (machine-dependent numbers).
if [ "$REAL" -eq 1 ]; then
  REAL_BIN="$BUILD_DIR/bench/bench_real_mode"
  if [ ! -x "$REAL_BIN" ]; then
    echo "error: $REAL_BIN not found; build first" >&2
    exit 1
  fi
  QUICK_FLAG=""
  if [ "$SMOKE" -eq 1 ]; then QUICK_FLAG="--quick"; fi
  echo "== real-mode benches -> $OUT_DIR/BENCH_real.json"
  "$REAL_BIN" $QUICK_FLAG --json="$OUT_DIR/BENCH_real.json"
fi

# Instant-restore availability bench (docs/RECOVERY_WALKTHROUGH.md,
# "Instant restore"): time-to-first-commit after losing a data device and
# the commit-latency tail while the backlog drains, eager vs instant.
# Recorded into BENCH_restore.json, never compared against a baseline —
# the signal worth eyeballing is the shape (instant opens far sooner and
# shifts rebuild cost into the p99 tail), not the absolute numbers.
E10="$BUILD_DIR/bench/bench_e10_instant_restore"
if [ -x "$E10" ]; then
  echo "== instant-restore bench -> $OUT_DIR/BENCH_restore.json"
  "$E10" --json="$OUT_DIR/BENCH_restore.json"
else
  echo "note: $E10 not built; skipping BENCH_restore.json" >&2
fi

# Elastic scalability (docs/PROTOCOLS.md, "Membership & ownership
# handoff"): commits/sec per node at 3/8/16 nodes with and without
# membership churn (periodic handoffs + a mid-run join). Recorded into
# BENCH_e2.json, never gated — the signal is the flat plain curve and the
# bounded churn discount, both simulated-time shapes.
E2="$BUILD_DIR/bench/bench_e2_scalability"
if [ -x "$E2" ]; then
  echo "== elastic scalability bench -> $OUT_DIR/BENCH_e2.json"
  "$E2" --json="$OUT_DIR/BENCH_e2.json"
else
  echo "note: $E2 not built; skipping BENCH_e2.json" >&2
fi

# Fold the commit-latency quantiles into BENCH_micro.json so one file
# carries every gated latency metric (docs/performance.md). The checker
# reads flat numeric keys alongside the google-benchmark entries.
echo "== merging commit-latency quantiles into BENCH_micro.json"
python3 - "$OUT_DIR/BENCH_micro.json" "$OUT_DIR/BENCH_e1.json" <<'EOF'
import json, sys
micro_path, e1_path = sys.argv[1], sys.argv[2]
with open(micro_path) as f:
    micro = json.load(f)
with open(e1_path) as f:
    e1 = json.load(f)
for name, value in e1.items():
    if ("_p50_" in name or "_p95_" in name or "_p99_" in name) and \
            isinstance(value, (int, float)):
        micro[name] = value
with open(micro_path, "w") as f:
    json.dump(micro, f, indent=1)
    f.write("\n")
EOF

if [ "$SMOKE" -eq 1 ]; then
  python3 "$ROOT/scripts/check_bench_regression.py" --validate-only \
    "$OUT_DIR/BENCH_micro.json" "$OUT_DIR/BENCH_e1.json" \
    "$OUT_DIR/BENCH_restore.json" "$OUT_DIR/BENCH_e2.json"
  echo "bench smoke OK"
  exit 0
fi

if [ "$CHECK" -eq 0 ]; then
  echo "baseline check skipped (--no-check)"
  exit 0
fi

# Baselines are whatever is committed at HEAD; a dirty working copy of the
# BENCH files never masks a regression.
STATUS=0
for name in BENCH_micro BENCH_e1; do
  if ! git -C "$ROOT" show "HEAD:${name}.json" > "/tmp/${name}_baseline.json" \
      2>/dev/null; then
    echo "no committed baseline for ${name}.json; skipping comparison"
    continue
  fi
  echo "== checking ${name}.json against HEAD baseline"
  python3 "$ROOT/scripts/check_bench_regression.py" \
    "/tmp/${name}_baseline.json" "$OUT_DIR/${name}.json" || STATUS=1
done

# Wall-clock results are compared for the report, never for the gate:
# --report-only never fails on deltas. The trend table is printed between
# explicit markers so it actually lands in CI logs (previously a missing
# baseline skipped the block silently and a malformed one killed the
# script mid-flight via `set -e` with no explanation). A malformed
# baseline or candidate JSON (checker exit 2) DOES fail the run: that is
# a harness bug, not a machine-dependent perf delta.
if [ "$REAL" -eq 1 ]; then
  if git -C "$ROOT" show "HEAD:BENCH_real.json" \
      > /tmp/BENCH_real_baseline.json 2>/dev/null; then
    echo "== BENCH_real.json trend vs HEAD baseline (report only, never gated)"
    if python3 "$ROOT/scripts/check_bench_regression.py" --report-only \
        /tmp/BENCH_real_baseline.json "$OUT_DIR/BENCH_real.json"; then
      echo "== end BENCH_real trend table"
    else
      echo "error: BENCH_real baseline/candidate malformed or unreadable" >&2
      STATUS=1
    fi
  else
    echo "== no committed BENCH_real.json baseline; trend table skipped"
  fi
fi
exit $STATUS
