#!/usr/bin/env bash
# Regenerates every experiment table (DESIGN.md Section 3 / EXPERIMENTS.md).
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  case "$b" in
    *bench_micro_ops) "$b" --benchmark_min_time=0.05s ;;
    *) "$b" ;;
  esac
done
