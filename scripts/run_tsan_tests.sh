#!/usr/bin/env bash
# ThreadSanitizer pass over the real-threads execution engine
# (docs/architecture_modes.md, docs/fault_injection.md).
#
# Builds the tree under -DCLOG_TSAN=ON in its own build directory and runs
# the `execution`-labelled ctest suite — the cross-mode equivalence tests,
# the real-mode crash drill, and the determinism pin — the tests that
# actually put multiple threads through the executor, the mailbox network,
# and the shared-state seams (metrics, trace sink, log manager) — followed
# by the `restore`-labelled suite, whose real-mode half runs background
# restore sweeper threads against foreground first-touch rebuilds — and
# the `wal`-labelled suite, which hammers the lock-free WAL front end
# (staging buffers, atomic LSN reservation, background drainer) with
# multi-producer append/flush/abandon storms.
#
# Usage: scripts/run_tsan_tests.sh [--build-dir=DIR] [--repeat=N]
#   --repeat=N  run the suite N times (default 3): scheduler-dependent
#               interleavings need more than one roll of the dice.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-tsan"
REPEAT=3
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --repeat=*) REPEAT="${arg#--repeat=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== configuring $BUILD_DIR with -DCLOG_TSAN=ON"
cmake -B "$BUILD_DIR" -S "$ROOT" -DCLOG_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: a race is a hard failure, not a log line.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

for i in $(seq 1 "$REPEAT"); do
  echo "== ctest -L execution under TSan (pass $i/$REPEAT)"
  ctest --test-dir "$BUILD_DIR" -L execution --output-on-failure
done

# Restore suite: the real-mode instant-restore tests race background
# sweeper threads against first-touch rebuilds and restart/shutdown, the
# sharpest shared-state seam added since the executor itself. Repeated for
# the same reason as above.
for i in $(seq 1 "$REPEAT"); do
  echo "== ctest -L restore under TSan (pass $i/$REPEAT)"
  ctest --test-dir "$BUILD_DIR" -L restore --output-on-failure
done

# Adaptive suite: the execution passes above already hammer the
# dependency-parallel redo worker pool (the cross-mode adaptive recovery
# test runs real workers under contention); one pass over the adaptive
# torture shards adds the full schedule-driven mix — upgrades, backfills,
# skip classification, and mid-recovery re-entry — on top.
echo "== ctest -L adaptive under TSan"
ctest --test-dir "$BUILD_DIR" -L adaptive --output-on-failure

# Elastic suite: the handoff unit drill's real-threads half crashes
# either endpoint of a page handoff at every phase boundary while worker
# threads, the mailbox network, and the durable ledgers interact — the
# handoff/membership seam's thread-safety check. One pass: the drill
# itself iterates all boundary x endpoint combinations.
echo "== ctest -L elastic under TSan"
ctest --test-dir "$BUILD_DIR" -L elastic -R handoff_test --output-on-failure

# WAL suite: producers publish records through lock-free staging rings
# while the drainer assembles and a flusher forces the tail — the densest
# atomics in the tree. TSan must see every append/drain/flush/abandon
# interleaving it can provoke.
for i in $(seq 1 "$REPEAT"); do
  echo "== ctest -L wal under TSan (pass $i/$REPEAT)"
  ctest --test-dir "$BUILD_DIR" -L wal --output-on-failure
done
echo "TSan execution+restore+wal+adaptive+elastic suites OK"
