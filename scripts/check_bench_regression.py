#!/usr/bin/env python3
"""Bench regression gate: compare fresh bench JSON against a baseline.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json [--threshold=0.2]
    check_bench_regression.py --report-only BASELINE.json CANDIDATE.json
    check_bench_regression.py --validate-only CANDIDATE.json [...]

Two input formats are understood:

  * google-benchmark ``--benchmark_format=json`` output: every benchmark
    entry carrying ``bytes_per_second`` or ``items_per_second`` becomes a
    higher-is-better throughput metric.
  * The flat ``{"name": value, ...}`` maps written by the experiment
    binaries (e.g. ``bench_e1_commit_cost --json=...``). Direction is
    derived from the metric name suffix:
      higher is better:  _tps, _mbps, _per_sec
      lower is better:   _ms, _ns, _per_commit, _msgs, _bytes
    Metrics with an unrecognized suffix are reported but not gated.

A metric regresses when it moves more than ``threshold`` (default 20%) in
the bad direction relative to the baseline. Improvements never fail.
Metrics present in the baseline but missing from the candidate fail (a
silently dropped benchmark is not a pass); new metrics are informational.

With ``--report-only`` the same comparison is printed but deltas never
fail: use it for wall-clock results (BENCH_real.json) that are
machine-dependent and recorded for eyeballing, never gated. Malformed or
unreadable input still exits 2 even under ``--report-only`` — a broken
baseline is a harness bug, not a perf signal.

Exit status: 0 = no regression, 1 = regression or missing metric,
2 = bad invocation / unreadable input.
"""

import json
import sys

HIGHER_SUFFIXES = ("_tps", "_mbps", "_per_sec")
LOWER_SUFFIXES = ("_ms", "_ns", "_per_commit", "_msgs", "_bytes")


def load_metrics(path):
    """Returns {name: (value, direction)}; direction is +1 (higher better),
    -1 (lower better), or 0 (informational)."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    metrics = {}
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        for b in doc["benchmarks"]:
            name = b.get("name")
            if not name or b.get("error_occurred"):
                continue
            if "bytes_per_second" in b:
                metrics[name + ":bytes_per_second"] = (
                    float(b["bytes_per_second"]), +1)
            elif "items_per_second" in b:
                metrics[name + ":items_per_second"] = (
                    float(b["items_per_second"]), +1)
    # Flat top-level numeric keys are gated too, even in a google-benchmark
    # document: run_bench.sh folds the commit-latency quantiles from
    # BENCH_e1.json into BENCH_micro.json as top-level "<name>_ms" keys.
    if isinstance(doc, dict):
        for name, value in doc.items():
            if not isinstance(value, (int, float)):
                continue
            if name.endswith(HIGHER_SUFFIXES):
                direction = +1
            elif name.endswith(LOWER_SUFFIXES):
                direction = -1
            else:
                direction = 0
            metrics[name] = (float(value), direction)
    if not metrics:
        raise ValueError(f"{path}: no recognizable metrics")
    return metrics


def main(argv):
    threshold = 0.2
    validate_only = False
    report_only = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--validate-only":
            validate_only = True
        elif arg == "--report-only":
            report_only = True
        elif arg.startswith("--"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)

    if validate_only:
        if not paths:
            print(__doc__, file=sys.stderr)
            return 2
        for path in paths:
            try:
                metrics = load_metrics(path)
            except (OSError, ValueError, json.JSONDecodeError) as e:
                print(f"INVALID {path}: {e}", file=sys.stderr)
                return 1
            print(f"ok {path}: {len(metrics)} metrics")
        return 0

    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, candidate_path = paths
    try:
        baseline = load_metrics(baseline_path)
        candidate = load_metrics(candidate_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    failures = []
    for name, (base, direction) in sorted(baseline.items()):
        if name not in candidate:
            # Printed here too, not just in the failure summary: with
            # --report-only the summary is suppressed, and a silently
            # dropped metric must still show up in the trend table.
            print(f"MISSING  {name}: {base:.4g} -> (absent)")
            failures.append(f"MISSING  {name} (baseline {base:.4g})")
            continue
        new = candidate[name][0]
        if direction == 0 or base == 0:
            print(f"info     {name}: {base:.4g} -> {new:.4g}")
            continue
        change = (new - base) / abs(base)
        regressed = (direction > 0 and change < -threshold) or (
            direction < 0 and change > threshold)
        tag = "REGRESS " if regressed else ("improve " if
                                            change * direction > 0 else "ok      ")
        print(f"{tag} {name}: {base:.4g} -> {new:.4g} ({change:+.1%})")
        if regressed:
            failures.append(
                f"REGRESS  {name}: {base:.4g} -> {new:.4g} ({change:+.1%}, "
                f"limit {threshold:.0%})")
    for name in sorted(set(candidate) - set(baseline)):
        print(f"new      {name}: {candidate[name][0]:.4g}")

    if failures:
        if report_only:
            print(f"\ntrend: {len(failures)} delta(s) beyond threshold "
                  "(report only, not gated)")
            return 0
        print(f"\n{len(failures)} bench regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if report_only:
        print(f"\ntrend: {len(baseline)} metric(s) compared, all within "
              "threshold (report only, not gated)")
        return 0
    print("\nno bench regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
