#!/usr/bin/env bash
# Builds the tree under ASan+UBSan (-DCLOG_SANITIZE=ON) in a separate
# build directory and runs one torture shard plus the crash-during-
# recovery, group-commit, adaptive-logging, media-failure, hammer-restore,
# and elastic-membership shards through it. Memory errors in the recovery/
# retry/commit-coalescing/adaptive-redo/media-rebuild/instant-restore/
# ownership-handoff paths show up here long before they corrupt a
# schedule.
#
# Usage: scripts/run_sanitized_torture.sh [build-dir] [shard]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
SHARD="${2:-0}"

cmake -B "$BUILD_DIR" -S . -DCLOG_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target torture_test media_recovery_test instant_restore_test \
  handoff_test

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R "^(torture_shard_${SHARD}|torture_recovery_crash_shard_0|torture_group_commit_shard_0|torture_adaptive_shard_0|torture_media_shard_0|torture_hammer_restore_shard_0|torture_elastic_shard_0)\$"

# Shard 1 of the adaptive corpus forces a crash into every repair pass,
# so parallel redo is torn down and re-entered under the sanitizers.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L adaptive

# The media and restore labels cover more than the shards above (the
# media-recovery unit tests and the instant-restore first-touch tests);
# run the whole labelled set so the on-demand rebuild path gets the same
# sanitizer coverage as the torture schedules that drive it.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L "media|restore"

# Elastic label: shard 1 arms a crash into every handoff (the durable
# ledgers re-enter on every transfer), and the handoff unit drill kills
# each endpoint at each phase boundary — the densest free/reuse churn in
# the ownership ledger, exactly what ASan is for.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L elastic
