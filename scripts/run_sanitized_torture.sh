#!/usr/bin/env bash
# Builds the tree under ASan+UBSan (-DCLOG_SANITIZE=ON) in a separate
# build directory and runs one torture shard plus the crash-during-
# recovery, group-commit, and media-failure shards through it. Memory
# errors in the recovery/retry/commit-coalescing/media-rebuild paths show
# up here long before they corrupt a schedule.
#
# Usage: scripts/run_sanitized_torture.sh [build-dir] [shard]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
SHARD="${2:-0}"

cmake -B "$BUILD_DIR" -S . -DCLOG_SANITIZE=ON
cmake --build "$BUILD_DIR" --target torture_test -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R "^(torture_shard_${SHARD}|torture_recovery_crash_shard_0|torture_group_commit_shard_0|torture_media_shard_0)\$"
