file(REMOVE_RECURSE
  "CMakeFiles/clog_logdump.dir/logdump.cc.o"
  "CMakeFiles/clog_logdump.dir/logdump.cc.o.d"
  "clog_logdump"
  "clog_logdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_logdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
