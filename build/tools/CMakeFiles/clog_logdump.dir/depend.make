# Empty dependencies file for clog_logdump.
# This may be replaced when dependencies are built.
