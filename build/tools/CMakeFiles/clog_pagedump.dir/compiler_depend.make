# Empty compiler generated dependencies file for clog_pagedump.
# This may be replaced when dependencies are built.
