file(REMOVE_RECURSE
  "CMakeFiles/clog_pagedump.dir/pagedump.cc.o"
  "CMakeFiles/clog_pagedump.dir/pagedump.cc.o.d"
  "clog_pagedump"
  "clog_pagedump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_pagedump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
