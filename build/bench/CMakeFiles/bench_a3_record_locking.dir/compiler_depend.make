# Empty compiler generated dependencies file for bench_a3_record_locking.
# This may be replaced when dependencies are built.
