file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_record_locking.dir/a3_record_locking.cc.o"
  "CMakeFiles/bench_a3_record_locking.dir/a3_record_locking.cc.o.d"
  "bench_a3_record_locking"
  "bench_a3_record_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_record_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
