file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_single_crash.dir/e4_single_crash.cc.o"
  "CMakeFiles/bench_e4_single_crash.dir/e4_single_crash.cc.o.d"
  "bench_e4_single_crash"
  "bench_e4_single_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_single_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
