# Empty dependencies file for bench_e4_single_crash.
# This may be replaced when dependencies are built.
