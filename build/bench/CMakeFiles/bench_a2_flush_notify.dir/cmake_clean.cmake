file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_flush_notify.dir/a2_flush_notify.cc.o"
  "CMakeFiles/bench_a2_flush_notify.dir/a2_flush_notify.cc.o.d"
  "bench_a2_flush_notify"
  "bench_a2_flush_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_flush_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
