# Empty compiler generated dependencies file for bench_a2_flush_notify.
# This may be replaced when dependencies are built.
