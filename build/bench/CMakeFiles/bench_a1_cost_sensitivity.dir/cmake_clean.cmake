file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_cost_sensitivity.dir/a1_cost_sensitivity.cc.o"
  "CMakeFiles/bench_a1_cost_sensitivity.dir/a1_cost_sensitivity.cc.o.d"
  "bench_a1_cost_sensitivity"
  "bench_a1_cost_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_cost_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
