# Empty compiler generated dependencies file for bench_a1_cost_sensitivity.
# This may be replaced when dependencies are built.
