file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_scalability.dir/e2_scalability.cc.o"
  "CMakeFiles/bench_e2_scalability.dir/e2_scalability.cc.o.d"
  "bench_e2_scalability"
  "bench_e2_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
