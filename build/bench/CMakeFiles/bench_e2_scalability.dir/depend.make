# Empty dependencies file for bench_e2_scalability.
# This may be replaced when dependencies are built.
