file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_page_pingpong.dir/e8_page_pingpong.cc.o"
  "CMakeFiles/bench_e8_page_pingpong.dir/e8_page_pingpong.cc.o.d"
  "bench_e8_page_pingpong"
  "bench_e8_page_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_page_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
