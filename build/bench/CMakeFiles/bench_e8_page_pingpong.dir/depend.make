# Empty dependencies file for bench_e8_page_pingpong.
# This may be replaced when dependencies are built.
