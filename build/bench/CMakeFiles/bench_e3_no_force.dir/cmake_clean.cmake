file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_no_force.dir/e3_no_force.cc.o"
  "CMakeFiles/bench_e3_no_force.dir/e3_no_force.cc.o.d"
  "bench_e3_no_force"
  "bench_e3_no_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_no_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
