# Empty compiler generated dependencies file for bench_e3_no_force.
# This may be replaced when dependencies are built.
