file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_recovery_scaling.dir/e9_recovery_scaling.cc.o"
  "CMakeFiles/bench_e9_recovery_scaling.dir/e9_recovery_scaling.cc.o.d"
  "bench_e9_recovery_scaling"
  "bench_e9_recovery_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_recovery_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
