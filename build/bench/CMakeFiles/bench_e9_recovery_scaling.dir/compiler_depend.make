# Empty compiler generated dependencies file for bench_e9_recovery_scaling.
# This may be replaced when dependencies are built.
