# Empty compiler generated dependencies file for bench_e7_log_space.
# This may be replaced when dependencies are built.
