file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_log_space.dir/e7_log_space.cc.o"
  "CMakeFiles/bench_e7_log_space.dir/e7_log_space.cc.o.d"
  "bench_e7_log_space"
  "bench_e7_log_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_log_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
