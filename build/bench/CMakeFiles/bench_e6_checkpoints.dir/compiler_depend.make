# Empty compiler generated dependencies file for bench_e6_checkpoints.
# This may be replaced when dependencies are built.
