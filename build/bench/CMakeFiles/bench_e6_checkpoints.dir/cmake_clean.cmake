file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_checkpoints.dir/e6_checkpoints.cc.o"
  "CMakeFiles/bench_e6_checkpoints.dir/e6_checkpoints.cc.o.d"
  "bench_e6_checkpoints"
  "bench_e6_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
