# Empty compiler generated dependencies file for bench_e5_multi_crash.
# This may be replaced when dependencies are built.
