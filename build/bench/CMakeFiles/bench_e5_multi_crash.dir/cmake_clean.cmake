file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_multi_crash.dir/e5_multi_crash.cc.o"
  "CMakeFiles/bench_e5_multi_crash.dir/e5_multi_crash.cc.o.d"
  "bench_e5_multi_crash"
  "bench_e5_multi_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_multi_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
