# Empty dependencies file for bench_e1_commit_cost.
# This may be replaced when dependencies are built.
