file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_commit_cost.dir/e1_commit_cost.cc.o"
  "CMakeFiles/bench_e1_commit_cost.dir/e1_commit_cost.cc.o.d"
  "bench_e1_commit_cost"
  "bench_e1_commit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_commit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
