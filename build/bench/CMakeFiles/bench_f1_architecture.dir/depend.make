# Empty dependencies file for bench_f1_architecture.
# This may be replaced when dependencies are built.
