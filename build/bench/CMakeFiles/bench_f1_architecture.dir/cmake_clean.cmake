file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_architecture.dir/f1_architecture.cc.o"
  "CMakeFiles/bench_f1_architecture.dir/f1_architecture.cc.o.d"
  "bench_f1_architecture"
  "bench_f1_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
