file(REMOVE_RECURSE
  "CMakeFiles/order_entry.dir/order_entry.cc.o"
  "CMakeFiles/order_entry.dir/order_entry.cc.o.d"
  "order_entry"
  "order_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
