# Empty dependencies file for order_entry.
# This may be replaced when dependencies are built.
