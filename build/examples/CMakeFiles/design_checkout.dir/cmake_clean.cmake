file(REMOVE_RECURSE
  "CMakeFiles/design_checkout.dir/design_checkout.cc.o"
  "CMakeFiles/design_checkout.dir/design_checkout.cc.o.d"
  "design_checkout"
  "design_checkout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
