# Empty compiler generated dependencies file for design_checkout.
# This may be replaced when dependencies are built.
