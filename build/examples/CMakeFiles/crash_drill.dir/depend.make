# Empty dependencies file for crash_drill.
# This may be replaced when dependencies are built.
