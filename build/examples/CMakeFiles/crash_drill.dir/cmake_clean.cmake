file(REMOVE_RECURSE
  "CMakeFiles/crash_drill.dir/crash_drill.cc.o"
  "CMakeFiles/crash_drill.dir/crash_drill.cc.o.d"
  "crash_drill"
  "crash_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
