# Empty compiler generated dependencies file for mobile_technician.
# This may be replaced when dependencies are built.
