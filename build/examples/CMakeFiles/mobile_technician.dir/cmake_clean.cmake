file(REMOVE_RECURSE
  "CMakeFiles/mobile_technician.dir/mobile_technician.cc.o"
  "CMakeFiles/mobile_technician.dir/mobile_technician.cc.o.d"
  "mobile_technician"
  "mobile_technician.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_technician.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
