file(REMOVE_RECURSE
  "CMakeFiles/slotted_fuzz_test.dir/slotted_fuzz_test.cc.o"
  "CMakeFiles/slotted_fuzz_test.dir/slotted_fuzz_test.cc.o.d"
  "slotted_fuzz_test"
  "slotted_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slotted_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
