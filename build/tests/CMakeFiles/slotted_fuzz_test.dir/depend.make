# Empty dependencies file for slotted_fuzz_test.
# This may be replaced when dependencies are built.
