file(REMOVE_RECURSE
  "CMakeFiles/lock_test.dir/lock_test.cc.o"
  "CMakeFiles/lock_test.dir/lock_test.cc.o.d"
  "lock_test"
  "lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
