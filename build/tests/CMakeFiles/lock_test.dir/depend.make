# Empty dependencies file for lock_test.
# This may be replaced when dependencies are built.
