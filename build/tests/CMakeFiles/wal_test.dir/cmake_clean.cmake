file(REMOVE_RECURSE
  "CMakeFiles/wal_test.dir/wal_test.cc.o"
  "CMakeFiles/wal_test.dir/wal_test.cc.o.d"
  "wal_test"
  "wal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
