file(REMOVE_RECURSE
  "CMakeFiles/introspect_test.dir/introspect_test.cc.o"
  "CMakeFiles/introspect_test.dir/introspect_test.cc.o.d"
  "introspect_test"
  "introspect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/introspect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
