# Empty dependencies file for introspect_test.
# This may be replaced when dependencies are built.
