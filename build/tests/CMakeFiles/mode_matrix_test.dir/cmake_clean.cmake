file(REMOVE_RECURSE
  "CMakeFiles/mode_matrix_test.dir/mode_matrix_test.cc.o"
  "CMakeFiles/mode_matrix_test.dir/mode_matrix_test.cc.o.d"
  "mode_matrix_test"
  "mode_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
