# Empty dependencies file for mode_matrix_test.
# This may be replaced when dependencies are built.
