file(REMOVE_RECURSE
  "CMakeFiles/heap_table_test.dir/heap_table_test.cc.o"
  "CMakeFiles/heap_table_test.dir/heap_table_test.cc.o.d"
  "heap_table_test"
  "heap_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
