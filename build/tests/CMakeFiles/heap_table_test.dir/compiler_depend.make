# Empty compiler generated dependencies file for heap_table_test.
# This may be replaced when dependencies are built.
