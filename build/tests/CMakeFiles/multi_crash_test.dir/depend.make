# Empty dependencies file for multi_crash_test.
# This may be replaced when dependencies are built.
