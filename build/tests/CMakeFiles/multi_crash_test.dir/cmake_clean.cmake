file(REMOVE_RECURSE
  "CMakeFiles/multi_crash_test.dir/multi_crash_test.cc.o"
  "CMakeFiles/multi_crash_test.dir/multi_crash_test.cc.o.d"
  "multi_crash_test"
  "multi_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
