file(REMOVE_RECURSE
  "CMakeFiles/recovery_edge_test.dir/recovery_edge_test.cc.o"
  "CMakeFiles/recovery_edge_test.dir/recovery_edge_test.cc.o.d"
  "recovery_edge_test"
  "recovery_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
