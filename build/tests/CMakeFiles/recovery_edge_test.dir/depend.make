# Empty dependencies file for recovery_edge_test.
# This may be replaced when dependencies are built.
