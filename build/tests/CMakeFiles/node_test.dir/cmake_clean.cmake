file(REMOVE_RECURSE
  "CMakeFiles/node_test.dir/node_test.cc.o"
  "CMakeFiles/node_test.dir/node_test.cc.o.d"
  "node_test"
  "node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
