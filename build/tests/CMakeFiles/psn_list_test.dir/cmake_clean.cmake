file(REMOVE_RECURSE
  "CMakeFiles/psn_list_test.dir/psn_list_test.cc.o"
  "CMakeFiles/psn_list_test.dir/psn_list_test.cc.o.d"
  "psn_list_test"
  "psn_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psn_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
