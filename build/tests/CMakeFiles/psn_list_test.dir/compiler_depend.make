# Empty compiler generated dependencies file for psn_list_test.
# This may be replaced when dependencies are built.
