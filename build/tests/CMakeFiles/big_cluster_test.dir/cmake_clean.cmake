file(REMOVE_RECURSE
  "CMakeFiles/big_cluster_test.dir/big_cluster_test.cc.o"
  "CMakeFiles/big_cluster_test.dir/big_cluster_test.cc.o.d"
  "big_cluster_test"
  "big_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
