# Empty compiler generated dependencies file for big_cluster_test.
# This may be replaced when dependencies are built.
