# Empty dependencies file for record_locking_test.
# This may be replaced when dependencies are built.
