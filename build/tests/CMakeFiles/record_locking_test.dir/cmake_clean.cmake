file(REMOVE_RECURSE
  "CMakeFiles/record_locking_test.dir/record_locking_test.cc.o"
  "CMakeFiles/record_locking_test.dir/record_locking_test.cc.o.d"
  "record_locking_test"
  "record_locking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_locking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
