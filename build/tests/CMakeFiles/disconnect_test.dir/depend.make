# Empty dependencies file for disconnect_test.
# This may be replaced when dependencies are built.
