file(REMOVE_RECURSE
  "CMakeFiles/disconnect_test.dir/disconnect_test.cc.o"
  "CMakeFiles/disconnect_test.dir/disconnect_test.cc.o.d"
  "disconnect_test"
  "disconnect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
