file(REMOVE_RECURSE
  "CMakeFiles/log_space_test.dir/log_space_test.cc.o"
  "CMakeFiles/log_space_test.dir/log_space_test.cc.o.d"
  "log_space_test"
  "log_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
