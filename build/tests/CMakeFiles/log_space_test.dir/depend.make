# Empty dependencies file for log_space_test.
# This may be replaced when dependencies are built.
