file(REMOVE_RECURSE
  "CMakeFiles/buffer_test.dir/buffer_test.cc.o"
  "CMakeFiles/buffer_test.dir/buffer_test.cc.o.d"
  "buffer_test"
  "buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
