file(REMOVE_RECURSE
  "libclog_node.a"
)
