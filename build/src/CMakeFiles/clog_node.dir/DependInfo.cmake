
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/checkpoint.cc" "src/CMakeFiles/clog_node.dir/node/checkpoint.cc.o" "gcc" "src/CMakeFiles/clog_node.dir/node/checkpoint.cc.o.d"
  "/root/repo/src/node/introspect.cc" "src/CMakeFiles/clog_node.dir/node/introspect.cc.o" "gcc" "src/CMakeFiles/clog_node.dir/node/introspect.cc.o.d"
  "/root/repo/src/node/log_space.cc" "src/CMakeFiles/clog_node.dir/node/log_space.cc.o" "gcc" "src/CMakeFiles/clog_node.dir/node/log_space.cc.o.d"
  "/root/repo/src/node/logging_strategy.cc" "src/CMakeFiles/clog_node.dir/node/logging_strategy.cc.o" "gcc" "src/CMakeFiles/clog_node.dir/node/logging_strategy.cc.o.d"
  "/root/repo/src/node/node.cc" "src/CMakeFiles/clog_node.dir/node/node.cc.o" "gcc" "src/CMakeFiles/clog_node.dir/node/node.cc.o.d"
  "/root/repo/src/node/page_service.cc" "src/CMakeFiles/clog_node.dir/node/page_service.cc.o" "gcc" "src/CMakeFiles/clog_node.dir/node/page_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
