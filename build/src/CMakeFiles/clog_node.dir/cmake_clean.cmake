file(REMOVE_RECURSE
  "CMakeFiles/clog_node.dir/node/checkpoint.cc.o"
  "CMakeFiles/clog_node.dir/node/checkpoint.cc.o.d"
  "CMakeFiles/clog_node.dir/node/introspect.cc.o"
  "CMakeFiles/clog_node.dir/node/introspect.cc.o.d"
  "CMakeFiles/clog_node.dir/node/log_space.cc.o"
  "CMakeFiles/clog_node.dir/node/log_space.cc.o.d"
  "CMakeFiles/clog_node.dir/node/logging_strategy.cc.o"
  "CMakeFiles/clog_node.dir/node/logging_strategy.cc.o.d"
  "CMakeFiles/clog_node.dir/node/node.cc.o"
  "CMakeFiles/clog_node.dir/node/node.cc.o.d"
  "CMakeFiles/clog_node.dir/node/page_service.cc.o"
  "CMakeFiles/clog_node.dir/node/page_service.cc.o.d"
  "libclog_node.a"
  "libclog_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
