# Empty compiler generated dependencies file for clog_node.
# This may be replaced when dependencies are built.
