# Empty compiler generated dependencies file for clog.
# This may be replaced when dependencies are built.
