file(REMOVE_RECURSE
  "libclog.a"
)
