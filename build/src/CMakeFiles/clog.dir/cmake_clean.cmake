file(REMOVE_RECURSE
  "CMakeFiles/clog.dir/core/cluster.cc.o"
  "CMakeFiles/clog.dir/core/cluster.cc.o.d"
  "CMakeFiles/clog.dir/core/heap_table.cc.o"
  "CMakeFiles/clog.dir/core/heap_table.cc.o.d"
  "CMakeFiles/clog.dir/core/txn_handle.cc.o"
  "CMakeFiles/clog.dir/core/txn_handle.cc.o.d"
  "CMakeFiles/clog.dir/core/workload.cc.o"
  "CMakeFiles/clog.dir/core/workload.cc.o.d"
  "libclog.a"
  "libclog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
