file(REMOVE_RECURSE
  "libclog_lock.a"
)
