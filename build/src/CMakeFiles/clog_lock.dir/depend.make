# Empty dependencies file for clog_lock.
# This may be replaced when dependencies are built.
