file(REMOVE_RECURSE
  "CMakeFiles/clog_lock.dir/lock/deadlock_detector.cc.o"
  "CMakeFiles/clog_lock.dir/lock/deadlock_detector.cc.o.d"
  "CMakeFiles/clog_lock.dir/lock/lock_cache.cc.o"
  "CMakeFiles/clog_lock.dir/lock/lock_cache.cc.o.d"
  "CMakeFiles/clog_lock.dir/lock/lock_manager.cc.o"
  "CMakeFiles/clog_lock.dir/lock/lock_manager.cc.o.d"
  "libclog_lock.a"
  "libclog_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
