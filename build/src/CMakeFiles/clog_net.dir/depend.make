# Empty dependencies file for clog_net.
# This may be replaced when dependencies are built.
