file(REMOVE_RECURSE
  "libclog_net.a"
)
