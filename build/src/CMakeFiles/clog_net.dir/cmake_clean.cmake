file(REMOVE_RECURSE
  "CMakeFiles/clog_net.dir/net/message.cc.o"
  "CMakeFiles/clog_net.dir/net/message.cc.o.d"
  "CMakeFiles/clog_net.dir/net/network.cc.o"
  "CMakeFiles/clog_net.dir/net/network.cc.o.d"
  "libclog_net.a"
  "libclog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
