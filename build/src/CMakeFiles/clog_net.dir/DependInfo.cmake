
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/message.cc" "src/CMakeFiles/clog_net.dir/net/message.cc.o" "gcc" "src/CMakeFiles/clog_net.dir/net/message.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/clog_net.dir/net/network.cc.o" "gcc" "src/CMakeFiles/clog_net.dir/net/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_wal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
