file(REMOVE_RECURSE
  "CMakeFiles/clog_recovery.dir/recovery/distributed_recovery.cc.o"
  "CMakeFiles/clog_recovery.dir/recovery/distributed_recovery.cc.o.d"
  "CMakeFiles/clog_recovery.dir/recovery/local_recovery.cc.o"
  "CMakeFiles/clog_recovery.dir/recovery/local_recovery.cc.o.d"
  "CMakeFiles/clog_recovery.dir/recovery/node_psn_list.cc.o"
  "CMakeFiles/clog_recovery.dir/recovery/node_psn_list.cc.o.d"
  "libclog_recovery.a"
  "libclog_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
