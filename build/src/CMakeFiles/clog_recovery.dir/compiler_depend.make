# Empty compiler generated dependencies file for clog_recovery.
# This may be replaced when dependencies are built.
