file(REMOVE_RECURSE
  "libclog_recovery.a"
)
