file(REMOVE_RECURSE
  "libclog_buffer.a"
)
