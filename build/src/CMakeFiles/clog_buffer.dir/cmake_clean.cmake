file(REMOVE_RECURSE
  "CMakeFiles/clog_buffer.dir/buffer/buffer_pool.cc.o"
  "CMakeFiles/clog_buffer.dir/buffer/buffer_pool.cc.o.d"
  "CMakeFiles/clog_buffer.dir/buffer/dirty_page_table.cc.o"
  "CMakeFiles/clog_buffer.dir/buffer/dirty_page_table.cc.o.d"
  "libclog_buffer.a"
  "libclog_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
