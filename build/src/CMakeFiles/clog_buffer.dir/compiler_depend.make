# Empty compiler generated dependencies file for clog_buffer.
# This may be replaced when dependencies are built.
