
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffer/buffer_pool.cc" "src/CMakeFiles/clog_buffer.dir/buffer/buffer_pool.cc.o" "gcc" "src/CMakeFiles/clog_buffer.dir/buffer/buffer_pool.cc.o.d"
  "/root/repo/src/buffer/dirty_page_table.cc" "src/CMakeFiles/clog_buffer.dir/buffer/dirty_page_table.cc.o" "gcc" "src/CMakeFiles/clog_buffer.dir/buffer/dirty_page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clog_wal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
