# Empty compiler generated dependencies file for clog_txn.
# This may be replaced when dependencies are built.
