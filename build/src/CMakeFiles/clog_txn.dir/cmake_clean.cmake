file(REMOVE_RECURSE
  "CMakeFiles/clog_txn.dir/txn/transaction.cc.o"
  "CMakeFiles/clog_txn.dir/txn/transaction.cc.o.d"
  "CMakeFiles/clog_txn.dir/txn/txn_table.cc.o"
  "CMakeFiles/clog_txn.dir/txn/txn_table.cc.o.d"
  "libclog_txn.a"
  "libclog_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
