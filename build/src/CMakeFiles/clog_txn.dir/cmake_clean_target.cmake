file(REMOVE_RECURSE
  "libclog_txn.a"
)
