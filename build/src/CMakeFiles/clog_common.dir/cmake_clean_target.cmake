file(REMOVE_RECURSE
  "libclog_common.a"
)
