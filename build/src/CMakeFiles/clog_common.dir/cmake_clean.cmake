file(REMOVE_RECURSE
  "CMakeFiles/clog_common.dir/common/codec.cc.o"
  "CMakeFiles/clog_common.dir/common/codec.cc.o.d"
  "CMakeFiles/clog_common.dir/common/crc32c.cc.o"
  "CMakeFiles/clog_common.dir/common/crc32c.cc.o.d"
  "CMakeFiles/clog_common.dir/common/metrics.cc.o"
  "CMakeFiles/clog_common.dir/common/metrics.cc.o.d"
  "CMakeFiles/clog_common.dir/common/random.cc.o"
  "CMakeFiles/clog_common.dir/common/random.cc.o.d"
  "CMakeFiles/clog_common.dir/common/sim_clock.cc.o"
  "CMakeFiles/clog_common.dir/common/sim_clock.cc.o.d"
  "CMakeFiles/clog_common.dir/common/status.cc.o"
  "CMakeFiles/clog_common.dir/common/status.cc.o.d"
  "libclog_common.a"
  "libclog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
