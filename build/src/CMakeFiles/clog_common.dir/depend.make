# Empty dependencies file for clog_common.
# This may be replaced when dependencies are built.
