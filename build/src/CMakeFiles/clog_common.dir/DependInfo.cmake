
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/codec.cc" "src/CMakeFiles/clog_common.dir/common/codec.cc.o" "gcc" "src/CMakeFiles/clog_common.dir/common/codec.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/clog_common.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/clog_common.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/clog_common.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/clog_common.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/clog_common.dir/common/random.cc.o" "gcc" "src/CMakeFiles/clog_common.dir/common/random.cc.o.d"
  "/root/repo/src/common/sim_clock.cc" "src/CMakeFiles/clog_common.dir/common/sim_clock.cc.o" "gcc" "src/CMakeFiles/clog_common.dir/common/sim_clock.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/clog_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/clog_common.dir/common/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
