# Empty dependencies file for clog_wal.
# This may be replaced when dependencies are built.
