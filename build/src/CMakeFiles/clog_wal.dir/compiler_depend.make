# Empty compiler generated dependencies file for clog_wal.
# This may be replaced when dependencies are built.
