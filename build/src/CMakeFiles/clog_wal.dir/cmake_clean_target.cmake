file(REMOVE_RECURSE
  "libclog_wal.a"
)
