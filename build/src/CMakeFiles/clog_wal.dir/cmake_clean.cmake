file(REMOVE_RECURSE
  "CMakeFiles/clog_wal.dir/wal/log_manager.cc.o"
  "CMakeFiles/clog_wal.dir/wal/log_manager.cc.o.d"
  "CMakeFiles/clog_wal.dir/wal/log_reader.cc.o"
  "CMakeFiles/clog_wal.dir/wal/log_reader.cc.o.d"
  "CMakeFiles/clog_wal.dir/wal/log_record.cc.o"
  "CMakeFiles/clog_wal.dir/wal/log_record.cc.o.d"
  "libclog_wal.a"
  "libclog_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
