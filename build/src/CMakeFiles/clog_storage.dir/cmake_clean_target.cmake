file(REMOVE_RECURSE
  "libclog_storage.a"
)
