# Empty compiler generated dependencies file for clog_storage.
# This may be replaced when dependencies are built.
