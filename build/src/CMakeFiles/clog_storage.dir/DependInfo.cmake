
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/clog_storage.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/clog_storage.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/clog_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/clog_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/clog_storage.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/clog_storage.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/storage/space_map.cc" "src/CMakeFiles/clog_storage.dir/storage/space_map.cc.o" "gcc" "src/CMakeFiles/clog_storage.dir/storage/space_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
