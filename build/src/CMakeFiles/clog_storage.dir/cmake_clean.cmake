file(REMOVE_RECURSE
  "CMakeFiles/clog_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/clog_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/clog_storage.dir/storage/page.cc.o"
  "CMakeFiles/clog_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/clog_storage.dir/storage/slotted_page.cc.o"
  "CMakeFiles/clog_storage.dir/storage/slotted_page.cc.o.d"
  "CMakeFiles/clog_storage.dir/storage/space_map.cc.o"
  "CMakeFiles/clog_storage.dir/storage/space_map.cc.o.d"
  "libclog_storage.a"
  "libclog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
