// E2 — Scalability with client count.
//
// Paper claim (Sections 1.1, 4): the new paradigm "has the potential to
// exploit all available resources and improve scalability and
// performance" because dependencies on server resources are reduced. N
// clients update disjoint page sets owned by one server; aggregate
// committed transactions per simulated second is reported per protocol.
// The server's log (B1) and disk (B2) serialize commits in the baselines;
// client-local logging scales with the clients.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

double MeasureTps(LoggingMode mode, std::size_t clients) {
  BenchCluster bc(std::string("e2_") + std::string(LoggingModeName(mode)) +
                      std::to_string(clients),
                  mode, /*buffer_frames=*/128);
  Node* server = Value(bc->AddNode(), "server");
  std::vector<Node*> client_nodes;
  for (std::size_t i = 0; i < clients; ++i) {
    client_nodes.push_back(Value(bc->AddNode(), "client"));
  }
  // Private working set per client: no lock contention, pure protocol
  // cost.
  std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
  for (std::size_t i = 0; i < clients; ++i) {
    auto pages = Value(AllocatePopulatedPages(&bc.get(), server->id(), 4, 8,
                                              64, 100 + i),
                       "pages");
    sessions.emplace_back(client_nodes[i]->id(), std::move(pages));
  }
  WorkloadConfig config;
  config.seed = 7;
  config.txns_per_session = 30;
  config.ops_per_txn = 6;
  config.update_fraction = 1.0;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  WorkloadDriver driver(&bc.get(), config, sessions);
  bc->network().ResetBusy();  // Measure steady state, not setup.
  Check(driver.Run(), "workload");
  // Aggregate throughput = committed work over the parallel makespan: the
  // busiest resource (a client, or the shared server) bounds the cluster.
  return Tps(driver.stats().committed, bc->network().MaxBusyNanos());
}

}  // namespace

int main() {
  Banner("E2 (scalability)",
         "Aggregate committed txns per simulated second vs number of "
         "clients (private working sets on one server).");

  std::printf("%-8s %16s %16s %16s %12s\n", "clients", "client-local",
              "ship-to-owner", "force-at-xfer", "local/B1");
  for (std::size_t clients : {1, 2, 4, 8, 16}) {
    double local = MeasureTps(LoggingMode::kClientLocal, clients);
    double ship = MeasureTps(LoggingMode::kShipToOwner, clients);
    double force = MeasureTps(LoggingMode::kForceAtTransfer, clients);
    std::printf("%-8zu %16.1f %16.1f %16.1f %11.2fx\n", clients, local, ship,
                force, ship > 0 ? local / ship : 0.0);
  }
  std::printf(
      "\nexpected shape: client-local aggregate throughput grows with "
      "clients (commits are independent local log forces); the baselines "
      "funnel every commit through the server's log/disk.\n");
  return 0;
}
