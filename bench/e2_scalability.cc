// E2 — Scalability with client count.
//
// Paper claim (Sections 1.1, 4): the new paradigm "has the potential to
// exploit all available resources and improve scalability and
// performance" because dependencies on server resources are reduced. N
// clients update disjoint page sets owned by one server; aggregate
// committed transactions per simulated second is reported per protocol.
// The server's log (B1) and disk (B2) serialize commits in the baselines;
// client-local logging scales with the clients.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

double MeasureTps(LoggingMode mode, std::size_t clients) {
  BenchCluster bc(std::string("e2_") + std::string(LoggingModeName(mode)) +
                      std::to_string(clients),
                  mode, /*buffer_frames=*/128);
  Node* server = Value(bc->AddNode(), "server");
  std::vector<Node*> client_nodes;
  for (std::size_t i = 0; i < clients; ++i) {
    client_nodes.push_back(Value(bc->AddNode(), "client"));
  }
  // Private working set per client: no lock contention, pure protocol
  // cost.
  std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
  for (std::size_t i = 0; i < clients; ++i) {
    auto pages = Value(AllocatePopulatedPages(&bc.get(), server->id(), 4, 8,
                                              64, 100 + i),
                       "pages");
    sessions.emplace_back(client_nodes[i]->id(), std::move(pages));
  }
  WorkloadConfig config;
  config.seed = 7;
  config.txns_per_session = 30;
  config.ops_per_txn = 6;
  config.update_fraction = 1.0;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  WorkloadDriver driver(&bc.get(), config, sessions);
  bc->network().ResetBusy();  // Measure steady state, not setup.
  Check(driver.Run(), "workload");
  // Aggregate throughput = committed work over the parallel makespan: the
  // busiest resource (a client, or the shared server) bounds the cluster.
  return Tps(driver.stats().committed, bc->network().MaxBusyNanos());
}

// Elastic variant: sharded ownership instead of one server. Every member
// owns pages and runs a session over its own working set plus one page of
// its ring neighbour (so the Section 2.2 protocols carry real traffic),
// and the churn run moves ownership underneath the workload — periodic
// four-phase handoffs plus one node joining mid-run (docs/PROTOCOLS.md,
// "Membership & ownership handoff"). The reproduction target is the
// north-star flatness claim: commits/sec *per node* holds as the cluster
// grows, and churn prices the handoff fences without collapsing it.

struct ElasticRow {
  double per_node_tps = 0;
  std::uint64_t handoffs = 0;   ///< Transfers that actually committed.
  std::uint64_t attempts = 0;   ///< Including Busy refusals (fenced/held).
};

ElasticRow MeasureElastic(std::size_t nodes, bool churn) {
  BenchCluster bc("e2_elastic_" + std::to_string(nodes) +
                      (churn ? "_churn" : "_plain"),
                  LoggingMode::kClientLocal, /*buffer_frames=*/128);
  std::vector<Node*> members;
  for (std::size_t i = 0; i < nodes; ++i) {
    members.push_back(Value(bc->AddNode(), "member"));
  }
  // Three pages per member: two in its session's working set, one spare
  // that only the churn schedule touches — handoffs of hot pages mostly
  // bounce off active transactions (Busy), spares keep churn flowing.
  std::vector<std::vector<PageId>> owned(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    owned[i] = Value(AllocatePopulatedPages(&bc.get(), members[i]->id(), 3, 8,
                                            64, 100 + i),
                     "pages");
  }
  std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
  for (std::size_t i = 0; i < nodes; ++i) {
    sessions.emplace_back(
        members[i]->id(),
        std::vector<PageId>{owned[i][0], owned[i][1],
                            owned[(i + 1) % nodes][0]});
  }
  WorkloadConfig config;
  config.seed = 7;
  config.txns_per_session = 30;
  config.ops_per_txn = 6;
  config.update_fraction = 0.8;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  WorkloadDriver driver(&bc.get(), config, sessions);
  ElasticRow row;
  if (churn) {
    driver.set_round_hook([&](std::uint64_t round) {
      if (round == 16) {
        Result<Node*> joined = bc->JoinNode();
        if (joined.ok()) members.push_back(*joined);
      }
      if (round % 16 != 2) return;
      // Rotate through every owned page (spares land most transfers; hot
      // pages usually answer Busy — that refusal cost is part of the
      // price being measured).
      std::uint64_t k = round / 16;
      PageId pid = owned[k % nodes][k % 3];
      NodeId target = members[(k + 1) % members.size()]->id();
      if (bc->CurrentOwner(pid) == target) return;
      ++row.attempts;
      if (bc->HandoffPage(pid, target).ok()) ++row.handoffs;
    });
  }
  bc->network().ResetBusy();
  Check(driver.Run(), "workload");
  row.per_node_tps =
      Tps(driver.stats().committed, bc->network().MaxBusyNanos()) /
      static_cast<double>(nodes);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  Banner("E2 (scalability)",
         "Aggregate committed txns per simulated second vs number of "
         "clients (private working sets on one server).");

  std::printf("%-8s %16s %16s %16s %12s\n", "clients", "client-local",
              "ship-to-owner", "force-at-xfer", "local/B1");
  for (std::size_t clients : {1, 2, 4, 8, 16}) {
    double local = MeasureTps(LoggingMode::kClientLocal, clients);
    double ship = MeasureTps(LoggingMode::kShipToOwner, clients);
    double force = MeasureTps(LoggingMode::kForceAtTransfer, clients);
    std::printf("%-8zu %16.1f %16.1f %16.1f %11.2fx\n", clients, local, ship,
                force, ship > 0 ? local / ship : 0.0);
  }
  std::printf(
      "\nexpected shape: client-local aggregate throughput grows with "
      "clients (commits are independent local log forces); the baselines "
      "funnel every commit through the server's log/disk.\n");

  Banner("E2b (elastic scalability)",
         "Committed txns per simulated second PER NODE, sharded ownership, "
         "with and without membership churn (handoffs + a mid-run join).");

  std::vector<std::pair<std::string, double>> kv;
  std::printf("%-8s %16s %16s %10s %20s\n", "nodes", "plain", "churn",
              "churn/plain", "handoffs (attempts)");
  for (std::size_t nodes : {3, 8, 16}) {
    ElasticRow plain = MeasureElastic(nodes, /*churn=*/false);
    ElasticRow churn = MeasureElastic(nodes, /*churn=*/true);
    std::printf("%-8zu %16.1f %16.1f %9.2fx %10llu (%llu)\n", nodes,
                plain.per_node_tps, churn.per_node_tps,
                plain.per_node_tps > 0
                    ? churn.per_node_tps / plain.per_node_tps
                    : 0.0,
                (unsigned long long)churn.handoffs,
                (unsigned long long)churn.attempts);
    std::string n = std::to_string(nodes);
    kv.emplace_back("e2_per_node_tps_plain_" + n, plain.per_node_tps);
    kv.emplace_back("e2_per_node_tps_churn_" + n, churn.per_node_tps);
    kv.emplace_back("e2_churn_handoffs_" + n,
                    static_cast<double>(churn.handoffs));
  }
  std::printf(
      "\nexpected shape: per-node throughput stays roughly flat as the "
      "cluster grows (commits are local log forces; cross-node traffic is "
      "one neighbour page per session), and churn costs a bounded slice — "
      "fences and ships — without collapsing the curve.\n");

  if (!json_path.empty()) WriteJsonKv(json_path, kv);
  return 0;
}
