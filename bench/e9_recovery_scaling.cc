// E9 — Recovery cost vs number of involved nodes; no log merging ever
// (Section 2.3 vs the fast/super-fast schemes of Mohan & Narang [14],
// which merge private logs even for a single crash).
//
// m nodes take committed turns updating the owner's pages, then the owner
// crashes with its cache lost and nobody holding the pages. Restart must
// interleave redo from all m logs in PSN order. We report per-node log
// scan work, coordination messages, and redo rounds as m grows — and
// assert that no step ever reads more than one log at a time (structural:
// the API only exposes a node's own log to its own scanner).

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

void RunRow(std::size_t involved) {
  BenchCluster bc("e9_" + std::to_string(involved),
                  LoggingMode::kClientLocal, 64);
  Node* owner = Value(bc->AddNode(), "owner");
  std::vector<Node*> nodes{owner};
  for (std::size_t i = 1; i < involved; ++i) {
    nodes.push_back(Value(bc->AddNode(), "client"));
  }
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), owner->id(), 4, 8, 64, 77), "pages");

  // Round-robin committed updates: every node contributes interleaved
  // PSN runs on every page.
  Random rng(6);
  for (int round = 0; round < 6; ++round) {
    for (Node* n : nodes) {
      TxnId txn = Value(n->Begin(), "begin");
      for (PageId pid : pages) {
        Check(n->Update(txn, RecordId{pid, static_cast<SlotId>(round % 8)},
                        rng.Bytes(64)),
              "update");
      }
      Check(n->Commit(txn), "commit");
    }
  }
  // Make sure no cache holds the pages: call them home then drop the
  // owner's own copies with the crash itself; drop client copies first.
  for (PageId pid : pages) {
    TxnId txn = Value(owner->Begin(), "reclaim");
    Check(owner->Update(txn, RecordId{pid, 0}, rng.Bytes(64)), "touch");
    Check(owner->Commit(txn), "touch commit");
  }

  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  Check(bc->CrashNode(owner->id()), "crash");
  Check(bc->RestartNode(owner->id()), "restart");
  const auto& s = bc->recovery_stats().at(owner->id());
  std::uint64_t msgs =
      bc->network().metrics().CounterValue("msg.total") - msgs0;
  std::uint64_t peer_scans = 0;
  for (Node* n : nodes) {
    peer_scans += n->metrics().CounterValue("recovery.records_scanned");
  }

  TxnId check = Value(nodes.back()->Begin(), "check");
  for (PageId pid : pages) {
    Check(nodes.back()->ScanPage(check, pid).status(), "scan");
  }
  Check(nodes.back()->Commit(check), "check commit");

  std::printf("%-9zu %9llu %10llu %9llu %9llu %8llu %9.2f\n", involved,
              static_cast<unsigned long long>(s.analysis_records),
              static_cast<unsigned long long>(peer_scans),
              static_cast<unsigned long long>(s.redo_rounds),
              static_cast<unsigned long long>(s.redo_applied),
              static_cast<unsigned long long>(msgs), Ms(s.sim_ns));
}

}  // namespace

int main() {
  Banner("E9 (recovery scaling, no log merge)",
         "Owner restart with m nodes' interleaved updates: per-node log "
         "scans and PSN-ordered redo rounds; logs are never merged.");
  std::printf("%-9s %9s %10s %9s %9s %8s %9s\n", "involved", "analyzed",
              "peer_scan", "rounds", "applied", "msgs", "sim_ms");
  for (std::size_t m : {1, 2, 3, 4, 6}) RunRow(m);
  std::printf(
      "\nexpected shape: redo rounds grow with the number of PSN run "
      "alternations (~ m x pages), peer scan work with each node's own "
      "log length — the merge-free property the paper claims over the "
      "fast/super-fast schemes of [14].\n");
  return 0;
}
