// E9 — Recovery cost vs number of involved nodes; no log merging ever
// (Section 2.3 vs the fast/super-fast schemes of Mohan & Narang [14],
// which merge private logs even for a single crash).
//
// m nodes take committed turns updating the owner's pages, then the owner
// crashes with its cache lost and nobody holding the pages. Restart must
// interleave redo from all m logs in PSN order. We report per-node log
// scan work, coordination messages, and redo rounds as m grows — and
// assert that no step ever reads more than one log at a time (structural:
// the API only exposes a node's own log to its own scanner).

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

void RunRow(std::size_t involved) {
  BenchCluster bc("e9_" + std::to_string(involved),
                  LoggingMode::kClientLocal, 64);
  Node* owner = Value(bc->AddNode(), "owner");
  std::vector<Node*> nodes{owner};
  for (std::size_t i = 1; i < involved; ++i) {
    nodes.push_back(Value(bc->AddNode(), "client"));
  }
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), owner->id(), 4, 8, 64, 77), "pages");

  // Round-robin committed updates: every node contributes interleaved
  // PSN runs on every page.
  Random rng(6);
  for (int round = 0; round < 6; ++round) {
    for (Node* n : nodes) {
      TxnId txn = Value(n->Begin(), "begin");
      for (PageId pid : pages) {
        Check(n->Update(txn, RecordId{pid, static_cast<SlotId>(round % 8)},
                        rng.Bytes(64)),
              "update");
      }
      Check(n->Commit(txn), "commit");
    }
  }
  // Make sure no cache holds the pages: call them home then drop the
  // owner's own copies with the crash itself; drop client copies first.
  for (PageId pid : pages) {
    TxnId txn = Value(owner->Begin(), "reclaim");
    Check(owner->Update(txn, RecordId{pid, 0}, rng.Bytes(64)), "touch");
    Check(owner->Commit(txn), "touch commit");
  }

  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  Check(bc->CrashNode(owner->id()), "crash");
  Check(bc->RestartNode(owner->id()), "restart");
  const auto& s = bc->recovery_stats().at(owner->id());
  std::uint64_t msgs =
      bc->network().metrics().CounterValue("msg.total") - msgs0;
  std::uint64_t peer_scans = 0;
  for (Node* n : nodes) {
    peer_scans += n->metrics().CounterValue("recovery.records_scanned");
  }

  TxnId check = Value(nodes.back()->Begin(), "check");
  for (PageId pid : pages) {
    Check(nodes.back()->ScanPage(check, pid).status(), "scan");
  }
  Check(nodes.back()->Commit(check), "check commit");

  std::printf("%-9zu %9llu %10llu %9llu %9llu %8llu %9.2f\n", involved,
              static_cast<unsigned long long>(s.analysis_records),
              static_cast<unsigned long long>(peer_scans),
              static_cast<unsigned long long>(s.redo_rounds),
              static_cast<unsigned long long>(s.redo_applied),
              static_cast<unsigned long long>(msgs), Ms(s.sim_ns));
}

// Strategy-mix axis (docs/PROTOCOLS.md "Adaptive logging"): the cluster
// runs LogStrategy::kAdaptive with dependency-parallel redo, and the
// workload dials the fraction of transactions left adaptive (the rest
// override to kPhysical per transaction via TxnOptions). Every session
// writes only its own pages, so adaptive transactions stay logical to
// commit and restart redo takes the self-only scheduler path. One loser
// per node, open at the crash, exercises the redo skip rule. Reported:
// log bytes written (compact logical records shrink the log), scheduler
// chains/pages/records, logical losers skipped, and recovery sim time.
void RunMixRow(int pct_adaptive) {
  LoggingPolicy policy = LoggingPolicy()
                             .WithStrategy(LogStrategy::kAdaptive)
                             .WithRedoWorkers(2);
  BenchCluster bc("e9_mix_" + std::to_string(pct_adaptive),
                  LoggingMode::kClientLocal, 64, 0, policy);
  std::vector<Node*> nodes;
  std::vector<std::vector<PageId>> pages;
  for (int i = 0; i < 3; ++i) {
    Node* n = Value(bc->AddNode(), "node");
    nodes.push_back(n);
    pages.push_back(Value(
        AllocatePopulatedPages(&bc.get(), n->id(), 4, 8, 64, 91 + i),
        "pages"));
  }

  Random rng(17);
  std::uint64_t adaptive_txns = 0;
  std::uint64_t physical_txns = 0;
  for (int round = 0; round < 8; ++round) {
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      Node* n = nodes[ni];
      TxnOptions topts;
      if (rng.Uniform(100) >= static_cast<std::uint64_t>(pct_adaptive)) {
        topts.strategy = LogStrategy::kPhysical;
      }
      TxnId txn = Value(n->Begin(topts), "begin");
      const PageId pid = pages[ni][round % pages[ni].size()];
      for (int u = 0; u < 4; ++u) {
        Check(n->Update(txn, RecordId{pid, static_cast<SlotId>(u * 2)},
                        rng.Bytes(64)),
              "update");
      }
      Check(n->Commit(txn), "commit");
      topts.strategy.has_value() ? ++physical_txns : ++adaptive_txns;
    }
  }
  // One adaptive loser per node, left OPEN at the crash: a pure-logical
  // loser's compact records carry no undo images and no commit, so
  // restart recovery redo-skips them and undoes nothing (the skip rule).
  // A trailing committed transaction on a different page forces the log
  // past the loser's records — an unforced tail would simply vanish in
  // the crash and there would be nothing to skip.
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    TxnId txn = Value(nodes[ni]->Begin(), "loser begin");
    Check(nodes[ni]->Update(txn, RecordId{pages[ni][0], 1}, rng.Bytes(64)),
          "loser update");
    TxnId flush = Value(nodes[ni]->Begin(), "flusher begin");
    Check(nodes[ni]->Update(flush, RecordId{pages[ni][1], 3}, rng.Bytes(64)),
          "flusher update");
    Check(nodes[ni]->Commit(flush), "flusher commit");
  }

  std::uint64_t log_bytes = 0;
  for (Node* n : nodes) log_bytes += n->log().appended_bytes();

  for (Node* n : nodes) Check(bc->CrashNode(n->id()), "crash");
  Check(bc->RestartNodes(bc->NodeIds()), "restart");

  std::uint64_t chains = 0, par_pages = 0, par_applied = 0, skipped = 0;
  std::uint64_t sim_ns = 0;
  for (const auto& [id, s] : bc->recovery_stats()) {
    chains += s.redo_chains;
    par_pages += s.parallel_pages;
    par_applied += s.parallel_applied;
    skipped += s.logical_losers_skipped;
    sim_ns += s.sim_ns;
  }

  // Committed state must be readable afterwards regardless of the mix.
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    TxnId check = Value(nodes[ni]->Begin(), "check");
    for (PageId pid : pages[ni]) {
      Check(nodes[ni]->ScanPage(check, pid).status(), "scan");
    }
    Check(nodes[ni]->Commit(check), "check commit");
  }

  std::printf("%-7d %9llu %9llu %10llu %7llu %9llu %9llu %8llu %9.2f\n",
              pct_adaptive, static_cast<unsigned long long>(adaptive_txns),
              static_cast<unsigned long long>(physical_txns),
              static_cast<unsigned long long>(log_bytes),
              static_cast<unsigned long long>(chains),
              static_cast<unsigned long long>(par_pages),
              static_cast<unsigned long long>(par_applied),
              static_cast<unsigned long long>(skipped), Ms(sim_ns));
}

}  // namespace

int main() {
  Banner("E9 (recovery scaling, no log merge)",
         "Owner restart with m nodes' interleaved updates: per-node log "
         "scans and PSN-ordered redo rounds; logs are never merged.");
  std::printf("%-9s %9s %10s %9s %9s %8s %9s\n", "involved", "analyzed",
              "peer_scan", "rounds", "applied", "msgs", "sim_ms");
  for (std::size_t m : {1, 2, 3, 4, 6}) RunRow(m);
  std::printf(
      "\nexpected shape: redo rounds grow with the number of PSN run "
      "alternations (~ m x pages), peer scan work with each node's own "
      "log length — the merge-free property the paper claims over the "
      "fast/super-fast schemes of [14].\n");

  Banner("E9b (strategy mix, adaptive logging)",
         "Whole-cluster crash under LogStrategy::kAdaptive, sweeping the "
         "fraction of transactions left adaptive (rest override to "
         "kPhysical per txn). Self-only pages take the dependency-parallel "
         "redo scheduler; one adaptive loser per node, open at the crash, "
         "exercises the redo skip rule.");
  std::printf("%-7s %9s %9s %10s %7s %9s %9s %8s %9s\n", "mix%", "adaptive",
              "physical", "log_bytes", "chains", "par_pages", "applied",
              "skipped", "sim_ms");
  for (int pct : {0, 25, 50, 75, 100}) RunMixRow(pct);
  std::printf(
      "\nexpected shape: log bytes fall as the adaptive fraction rises "
      "(compact logical records carry no undo image); chains and "
      "scheduler work stay flat — parallel redo is strategy-agnostic, "
      "only the skip rule distinguishes loser records.\n");
  return 0;
}
