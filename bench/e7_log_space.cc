// E7 — Log space management (Section 2.5).
//
// A client with a small bounded log runs a long update stream against
// owner pages. Log pressure must trigger the Section 2.5 protocol —
// evict/ship the min-RedoLSN page, ask the owner to force it, advance
// RedoLSN on the flush notification — and the stream must never fail with
// LogFull. Swept over log capacity; reports reclaim actions, forces, and
// overhead vs an unbounded log.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

void RunRow(std::uint64_t capacity_kib) {
  BenchCluster bc("e7_" + std::to_string(capacity_kib),
                  LoggingMode::kClientLocal, 64);
  Node* server = Value(bc->AddNode(), "server");
  NodeOptions bounded;
  bounded.log_capacity_bytes = capacity_kib * 1024;
  Node* client = Value(bc->AddNode(bounded), "client");
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 6, 8, 64, 31), "pages");

  Random rng(2);
  bc->network().ResetBusy();
  const std::size_t kTxns = 150;
  std::size_t committed = 0;
  for (std::size_t i = 0; i < kTxns; ++i) {
    TxnId txn = Value(client->Begin(), "begin");
    for (int op = 0; op < 4; ++op) {
      RecordId rid{pages[rng.Uniform(pages.size())],
                   static_cast<SlotId>(rng.Uniform(8))};
      Check(client->Update(txn, rid, rng.Bytes(200)), "update");
    }
    Check(client->Commit(txn), "commit");
    ++committed;
  }

  std::string label = capacity_kib == 0
                          ? "unbounded"
                          : std::to_string(capacity_kib) + "KiB";
  std::printf(
      "%-10s %10llu %10llu %12llu %12llu %10.1f\n", label.c_str(),
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(
          client->metrics().CounterValue("logspace.victim_forces")),
      static_cast<unsigned long long>(
          bc->network().metrics().CounterValue("msg.flush_request")),
      static_cast<unsigned long long>(client->log().LiveBytes()),
      Ms(bc->network().BusyNanos(client->id())));
}

}  // namespace

int main() {
  Banner("E7 (log space management)",
         "Bounded client log under a sustained update stream: the "
         "Section 2.5 force-min-RedoLSN protocol reclaims space; the "
         "stream never sees LogFull.");
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "capacity", "committed",
              "reclaims", "flush_reqs", "live_bytes", "busy_ms");
  RunRow(0);
  for (std::uint64_t kib : {512, 128, 64, 32}) RunRow(kib);
  std::printf(
      "\nexpected shape: smaller logs trigger proportionally more reclaim "
      "actions and owner forces; throughput degrades gracefully and "
      "correctness is unaffected (all txns commit).\n");
  return 0;
}
