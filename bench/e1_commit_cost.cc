// E1 — Commit cost: client-based logging vs log shipping vs page forcing.
//
// Paper claim (Sections 1.1, 3.1): "Local logging eliminates the need to
// send log records to remote nodes during transaction execution and at
// transaction commit." A single client updates server-owned pages; we
// sweep updates-per-transaction and measure, per commit: messages, bytes,
// and simulated commit latency, for the paper's protocol and both
// baselines. Expectation: kClientLocal pays one local log force and zero
// messages regardless of transaction size; kShipToOwner's cost grows with
// the log volume; kForceAtTransfer's with the page count.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

struct Row {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_ns = 0;
};

Row MeasureCommit(LoggingMode mode, std::size_t updates_per_txn,
                  std::size_t txns) {
  BenchCluster bc(std::string("e1_") + std::string(LoggingModeName(mode)),
                  mode, /*buffer_frames=*/256);
  Node* server = Value(bc->AddNode(), "server");
  Node* client = Value(bc->AddNode(), "client");
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 8, 8, 64, 1), "pages");

  // Warm the client's cache and locks so the measured loop isolates
  // commit-protocol cost, not cold fetches.
  Random rng(7);
  TxnId warm = Value(client->Begin(), "warm");
  for (PageId pid : pages) {
    Check(client->Update(warm, RecordId{pid, 0}, rng.Bytes(64)), "warm op");
  }
  Check(client->Commit(warm), "warm commit");

  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  std::uint64_t bytes0 = bc->network().metrics().CounterValue("bytes.total");
  std::uint64_t t0 = bc->clock().NowNanos();
  for (std::size_t i = 0; i < txns; ++i) {
    TxnId txn = Value(client->Begin(), "begin");
    for (std::size_t u = 0; u < updates_per_txn; ++u) {
      RecordId rid{pages[u % pages.size()],
                   static_cast<SlotId>(u / pages.size() % 8)};
      Check(client->Update(txn, rid, rng.Bytes(64)), "update");
    }
    Check(client->Commit(txn), "commit");
  }
  Row row;
  row.msgs = bc->network().metrics().CounterValue("msg.total") - msgs0;
  row.bytes = bc->network().metrics().CounterValue("bytes.total") - bytes0;
  row.sim_ns = bc->clock().NowNanos() - t0;
  row.msgs /= txns;
  row.bytes /= txns;
  row.sim_ns /= txns;
  return row;
}

}  // namespace

int main() {
  Banner("E1 (commit cost)",
         "Messages, bytes, and simulated latency per committed transaction "
         "vs transaction size, for client-local logging (paper), "
         "ship-to-owner (B1, ARIES/CSA-like), force-at-transfer (B2, "
         "Rdb/VMS-like).");

  const std::size_t kTxns = 50;
  std::printf("%-10s | %-23s | %-23s | %-23s\n", "", "client-local",
              "ship-to-owner (B1)", "force-at-transfer (B2)");
  std::printf("%-10s | %6s %8s %7s | %6s %8s %7s | %6s %8s %7s\n",
              "updates", "msgs", "bytes", "ms", "msgs", "bytes", "ms", "msgs",
              "bytes", "ms");
  for (std::size_t updates : {1, 2, 4, 8, 16, 32, 64}) {
    Row local = MeasureCommit(LoggingMode::kClientLocal, updates, kTxns);
    Row ship = MeasureCommit(LoggingMode::kShipToOwner, updates, kTxns);
    Row force = MeasureCommit(LoggingMode::kForceAtTransfer, updates, kTxns);
    std::printf(
        "%-10zu | %6llu %8llu %7.2f | %6llu %8llu %7.2f | %6llu %8llu "
        "%7.2f\n",
        updates, static_cast<unsigned long long>(local.msgs),
        static_cast<unsigned long long>(local.bytes), Ms(local.sim_ns),
        static_cast<unsigned long long>(ship.msgs),
        static_cast<unsigned long long>(ship.bytes), Ms(ship.sim_ns),
        static_cast<unsigned long long>(force.msgs),
        static_cast<unsigned long long>(force.bytes), Ms(force.sim_ns));
  }
  std::printf(
      "\nexpected shape: client-local stays at 0 msgs / flat latency; B1 "
      "grows with log volume; B2 grows with touched pages.\n");
  return 0;
}
