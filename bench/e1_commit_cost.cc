// E1 — Commit cost: client-based logging vs log shipping vs page forcing.
//
// Paper claim (Sections 1.1, 3.1): "Local logging eliminates the need to
// send log records to remote nodes during transaction execution and at
// transaction commit." A single client updates server-owned pages; we
// sweep updates-per-transaction and measure, per commit: messages, bytes,
// and simulated commit latency, for the paper's protocol and both
// baselines. Expectation: kClientLocal pays one local log force and zero
// messages regardless of transaction size; kShipToOwner's cost grows with
// the log volume; kForceAtTransfer's with the page count.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

struct Row {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_ns = 0;
  // Commit-latency quantiles (ns) from the client's commit.latency_ns
  // histogram, covering only the measured loop.
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
};

Row MeasureCommit(LoggingMode mode, std::size_t updates_per_txn,
                  std::size_t txns) {
  BenchCluster bc(std::string("e1_") + std::string(LoggingModeName(mode)),
                  mode, /*buffer_frames=*/256);
  Node* server = Value(bc->AddNode(), "server");
  Node* client = Value(bc->AddNode(), "client");
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 8, 8, 64, 1), "pages");

  // Warm the client's cache and locks so the measured loop isolates
  // commit-protocol cost, not cold fetches.
  Random rng(7);
  TxnHandle warm = Value(TxnHandle::Begin(client), "warm");
  for (PageId pid : pages) {
    Check(warm.Update(RecordId{pid, 0}, rng.Bytes(64)), "warm op");
  }
  Check(warm.Commit(), "warm commit");
  // Drop the warm-up from the histograms so the quantiles below cover only
  // the measured commits. Reset keeps entries in place, so any cached
  // handles inside the node stay valid.
  client->metrics().Reset();

  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  std::uint64_t bytes0 = bc->network().metrics().CounterValue("bytes.total");
  std::uint64_t t0 = bc->clock().NowNanos();
  for (std::size_t i = 0; i < txns; ++i) {
    TxnHandle txn = Value(TxnHandle::Begin(client), "begin");
    for (std::size_t u = 0; u < updates_per_txn; ++u) {
      RecordId rid{pages[u % pages.size()],
                   static_cast<SlotId>(u / pages.size() % 8)};
      Check(txn.Update(rid, rng.Bytes(64)), "update");
    }
    Check(txn.Commit(), "commit");
  }
  Row row;
  row.msgs = bc->network().metrics().CounterValue("msg.total") - msgs0;
  row.bytes = bc->network().metrics().CounterValue("bytes.total") - bytes0;
  row.sim_ns = bc->clock().NowNanos() - t0;
  row.msgs /= txns;
  row.bytes /= txns;
  row.sim_ns /= txns;
  HistogramStat lat = client->metrics().HistogramValue("commit.latency_ns");
  row.p50_ns = lat.p50;
  row.p95_ns = lat.p95;
  row.p99_ns = lat.p99;
  return row;
}

// Group commit (GroupCommitPolicy): four sessions committing concurrently
// on one client node over disjoint pages. The policy's claim is purely a
// force-count one — with coalescing on, the shared force amortizes across
// the group and the commit path charges well under one force per
// transaction; everything else (commits, schedules) is identical because
// the driver is deterministic.
struct GroupRow {
  double forces_per_commit = 0.0;
  double tps = 0.0;
  std::uint64_t parks = 0;
};

GroupRow MeasureGroupCommit(bool enabled) {
  std::string dir = "/tmp/clog_bench_e1_group";
  std::system(("rm -rf " + dir).c_str());
  ClusterOptions options;
  options.dir = dir;
  if (enabled) {
    options.logging_policy =
        LoggingPolicy().WithGroupCommitWindow(2'000'000, 4);
  }
  Cluster cluster(options);
  Node* node = Value(cluster.AddNode(), "node");
  auto pages = Value(
      AllocatePopulatedPages(&cluster, node->id(), 4, 8, 64, 1), "pages");
  std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
  for (std::size_t s = 0; s < 4; ++s) {
    sessions.push_back({node->id(), {pages[s]}});
  }
  WorkloadConfig config;
  config.seed = 31337;
  config.txns_per_session = 50;
  config.ops_per_txn = 4;
  config.records_per_page = 8;
  WorkloadDriver driver(&cluster, config, sessions);
  std::uint64_t forces0 = node->log().forces();
  std::uint64_t commits0 = node->metrics().CounterValue("txn.commits");
  std::uint64_t t0 = cluster.clock().NowNanos();
  Check(driver.Run(), "group-commit driver");
  std::uint64_t commits = node->metrics().CounterValue("txn.commits") -
                          commits0;
  GroupRow row;
  row.forces_per_commit =
      commits == 0 ? 0.0
                   : static_cast<double>(node->log().forces() - forces0) /
                         static_cast<double>(commits);
  row.tps = Tps(commits, cluster.clock().NowNanos() - t0);
  row.parks = driver.stats().commit_parks;
  std::system(("rm -rf " + dir).c_str());
  return row;
}

// Flat metric map for scripts/check_bench_regression.py. Every value here
// is *simulated* and therefore deterministic: the regression gate compares
// exact reruns, not noisy wall clock.
void WriteJson(const std::string& path,
               const std::vector<std::pair<std::string, double>>& kv) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH FATAL cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < kv.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6f%s\n", kv[i].first.c_str(), kv[i].second,
                 i + 1 < kv.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  Banner("E1 (commit cost)",
         "Messages, bytes, and simulated latency per committed transaction "
         "vs transaction size, for client-local logging (paper), "
         "ship-to-owner (B1, ARIES/CSA-like), force-at-transfer (B2, "
         "Rdb/VMS-like).");

  const std::size_t kTxns = 50;
  std::printf("%-10s | %-23s | %-23s | %-23s\n", "", "client-local",
              "ship-to-owner (B1)", "force-at-transfer (B2)");
  std::printf("%-10s | %6s %8s %7s | %6s %8s %7s | %6s %8s %7s\n",
              "updates", "msgs", "bytes", "ms", "msgs", "bytes", "ms", "msgs",
              "bytes", "ms");
  Row local8, ship8, force8;
  for (std::size_t updates : {1, 2, 4, 8, 16, 32, 64}) {
    Row local = MeasureCommit(LoggingMode::kClientLocal, updates, kTxns);
    Row ship = MeasureCommit(LoggingMode::kShipToOwner, updates, kTxns);
    Row force = MeasureCommit(LoggingMode::kForceAtTransfer, updates, kTxns);
    if (updates == 8) {
      local8 = local;
      ship8 = ship;
      force8 = force;
    }
    std::printf(
        "%-10zu | %6llu %8llu %7.2f | %6llu %8llu %7.2f | %6llu %8llu "
        "%7.2f\n",
        updates, static_cast<unsigned long long>(local.msgs),
        static_cast<unsigned long long>(local.bytes), Ms(local.sim_ns),
        static_cast<unsigned long long>(ship.msgs),
        static_cast<unsigned long long>(ship.bytes), Ms(ship.sim_ns),
        static_cast<unsigned long long>(force.msgs),
        static_cast<unsigned long long>(force.bytes), Ms(force.sim_ns));
  }
  std::printf(
      "\nexpected shape: client-local stays at 0 msgs / flat latency; B1 "
      "grows with log volume; B2 grows with touched pages.\n");

  // Commit-latency quantiles (commit.latency_ns histogram, measured loop
  // only) for the updates=8 point of each protocol.
  std::printf(
      "\n--- commit latency quantiles at updates=8 (ms, simulated) ---\n");
  std::printf("%-24s | %8s %8s %8s\n", "mode", "p50", "p95", "p99");
  struct {
    const char* name;
    const Row* row;
  } qrows[] = {{"client-local", &local8},
               {"ship-to-owner (B1)", &ship8},
               {"force-at-transfer (B2)", &force8}};
  for (const auto& q : qrows) {
    std::printf("%-24s | %8.3f %8.3f %8.3f\n", q.name, Ms(q.row->p50_ns),
                Ms(q.row->p95_ns), Ms(q.row->p99_ns));
  }

  std::printf(
      "\n--- group commit: 4 concurrent committers, disjoint pages ---\n");
  GroupRow off = MeasureGroupCommit(false);
  GroupRow on = MeasureGroupCommit(true);
  std::printf("%-10s | %16s | %10s | %8s\n", "policy", "forces/commit",
              "txn/s(sim)", "parks");
  std::printf("%-10s | %16.3f | %10.0f | %8llu\n", "off",
              off.forces_per_commit, off.tps,
              static_cast<unsigned long long>(off.parks));
  std::printf("%-10s | %16.3f | %10.0f | %8llu\n", "on",
              on.forces_per_commit, on.tps,
              static_cast<unsigned long long>(on.parks));
  std::printf(
      "\nexpected shape: coalescing drops forces/commit well under 1.0 with "
      "no change in committed work.\n");

  if (!json_path.empty()) {
    WriteJson(json_path,
              {{"e1_local_commit_ms", Ms(local8.sim_ns)},
               {"e1_b1_commit_ms", Ms(ship8.sim_ns)},
               {"e1_b2_commit_ms", Ms(force8.sim_ns)},
               {"e1_local_commit_p50_ms", Ms(local8.p50_ns)},
               {"e1_local_commit_p95_ms", Ms(local8.p95_ns)},
               {"e1_local_commit_p99_ms", Ms(local8.p99_ns)},
               {"e1_local_msgs", static_cast<double>(local8.msgs)},
               {"e1_group_off_forces_per_commit", off.forces_per_commit},
               {"e1_group_on_forces_per_commit", on.forces_per_commit},
               {"e1_group_off_tps", off.tps},
               {"e1_group_on_tps", on.tps}});
  }
  return 0;
}
