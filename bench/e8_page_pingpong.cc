// E8 — Hot-page ping-pong without disk forces (Sections 2.2, 3.2).
//
// "Rdb/VMS does not allow multiple outstanding updates belonging to
// different nodes to be present on a database page. Thus, modified pages
// are forced to disk before they are shipped from one node to another."
// Client-based logging transfers pages between writers with callbacks
// only. k nodes take turns updating one hot page; we count messages and
// disk forces per transfer for both protocols, sweeping the node count.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

struct Row {
  std::uint64_t msgs_per_xfer = 0;
  std::uint64_t forces_per_xfer = 0;
  double ms_per_xfer = 0;
};

Row Measure(LoggingMode mode, std::size_t writers) {
  BenchCluster bc(std::string("e8_") + std::string(LoggingModeName(mode)) +
                      std::to_string(writers),
                  mode, 64);
  Node* server = Value(bc->AddNode(), "server");
  std::vector<Node*> nodes{server};
  for (std::size_t i = 1; i < writers; ++i) {
    nodes.push_back(Value(bc->AddNode(), "writer"));
  }
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 1, 8, 64, 55), "page");
  RecordId hot{pages[0], 0};

  // Warm round so every node has fetched once.
  Random rng(4);
  for (Node* n : nodes) {
    TxnId txn = Value(n->Begin(), "warm");
    Check(n->Update(txn, hot, rng.Bytes(64)), "warm update");
    Check(n->Commit(txn), "warm commit");
  }

  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  std::uint64_t writes0 = server->disk().writes();
  std::uint64_t t0 = bc->clock().NowNanos();
  const std::size_t kRounds = 30;
  std::size_t transfers = 0;
  for (std::size_t r = 0; r < kRounds; ++r) {
    Node* n = nodes[r % nodes.size()];
    TxnId txn = Value(n->Begin(), "begin");
    Check(n->Update(txn, hot, rng.Bytes(64)), "update");
    Check(n->Commit(txn), "commit");
    ++transfers;
  }
  Row row;
  row.msgs_per_xfer =
      (bc->network().metrics().CounterValue("msg.total") - msgs0) / transfers;
  row.forces_per_xfer = (server->disk().writes() - writes0) / transfers;
  row.ms_per_xfer = Ms((bc->clock().NowNanos() - t0) / transfers);
  return row;
}

}  // namespace

int main() {
  Banner("E8 (hot-page ping-pong)",
         "One hot page bouncing between k writers: messages and owner disk "
         "forces per ownership transfer, client-local vs "
         "force-at-transfer.");
  std::printf("%-8s | %-24s | %-24s\n", "", "client-local",
              "force-at-transfer (B2)");
  std::printf("%-8s | %6s %8s %7s | %6s %8s %7s\n", "writers", "msgs",
              "forces", "ms", "msgs", "forces", "ms");
  for (std::size_t writers : {2, 3, 4, 6, 8}) {
    Row local = Measure(LoggingMode::kClientLocal, writers);
    Row force = Measure(LoggingMode::kForceAtTransfer, writers);
    std::printf("%-8zu | %6llu %8llu %7.2f | %6llu %8llu %7.2f\n", writers,
                static_cast<unsigned long long>(local.msgs_per_xfer),
                static_cast<unsigned long long>(local.forces_per_xfer),
                local.ms_per_xfer,
                static_cast<unsigned long long>(force.msgs_per_xfer),
                static_cast<unsigned long long>(force.forces_per_xfer),
                force.ms_per_xfer);
  }
  std::printf(
      "\nexpected shape: client-local moves the page with callbacks alone "
      "(zero disk forces per transfer); B2 pays a synchronous disk force "
      "on every transfer, dominating its per-transfer latency.\n");
  return 0;
}
