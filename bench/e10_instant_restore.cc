#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/fault_injector.h"

/// \file
/// E10: instant restore vs eager media recovery (docs/RECOVERY_WALKTHROUGH.md
/// "Instant restore"). A node loses its data device and restarts. Eager
/// recovery rebuilds every lost page before opening; instant restore opens
/// after planning and rebuilds pages at first touch, so the interesting
/// numbers are time-to-first-commit after the restart and the commit latency
/// tail while the backlog drains. Recorded by scripts/run_bench.sh into
/// BENCH_restore.json; not regression-gated (the cost model, not the shape,
/// moves when recovery internals change).

namespace clog::bench {
namespace {

constexpr int kPages = 32;
constexpr int kCommitsDuringRebuild = 64;

struct VariantRow {
  double first_commit_ms = 0;      ///< Restart begun -> first commit done.
  double commit_p50_ms = 0;        ///< Commit latency while backlog drains.
  double commit_p99_ms = 0;
  std::uint64_t pages_planned = 0; ///< 0 in the eager variant.
};

double QuantileMs(std::vector<std::uint64_t> ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  std::size_t i = static_cast<std::size_t>(q * static_cast<double>(ns.size()));
  if (i >= ns.size()) i = ns.size() - 1;
  return Ms(ns[i]);
}

VariantRow RunVariant(bool instant) {
  const std::string dir =
      std::string("/tmp/clog_bench_e10_") + (instant ? "instant" : "eager");
  std::system(("rm -rf " + dir).c_str());
  FaultInjector injector(/*seed=*/1);
  ClusterOptions options;
  options.dir = dir;
  options.fault_injector = &injector;
  options.node_defaults.logging_policy = LoggingPolicy().WithArchiveEvery(1);
  options.node_defaults.instant_restore.enabled = instant;
  Cluster cluster(options);
  Node* a = Value(cluster.AddNode(), "AddNode a");
  Node* b = Value(cluster.AddNode(), "AddNode b");

  // Seed kPages committed records on A, seal an archive pass, then layer
  // post-archive history so rebuilds exercise both redo and peer copies:
  // B updates the first quarter (peer-cached copies), A the second.
  std::vector<PageId> pids;
  std::vector<RecordId> rids;
  for (int p = 0; p < kPages; ++p) {
    PageId pid = Value(a->AllocatePage(), "AllocatePage");
    pids.push_back(pid);
    RecordId rid;
    Check(cluster.RunTransaction(a->id(), [&](TxnHandle& txn) {
      CLOG_ASSIGN_OR_RETURN(rid, txn.Insert(pid, "seed-" + std::to_string(p)));
      return Status::OK();
    }), "seed insert");
    rids.push_back(rid);
  }
  Check(a->Checkpoint(), "checkpoint");
  for (int p = 0; p < kPages; ++p) {
    NodeId updater = p < kPages / 4 ? b->id() : a->id();
    if (p >= kPages / 2) break;  // Second half: archive image is current.
    Check(cluster.RunTransaction(updater, [&](TxnHandle& txn) {
      return txn.Update(rids[p], "aged-" + std::to_string(p));
    }), "aging update");
  }

  // Lose A's data device, crash, restart, and commit once. Eager recovery
  // pays the whole rebuild inside RestartNodes; instant restore only plans.
  injector.ArmDeviceFault(a->id(), DeviceFault::kDestroyDataFile);
  Check(cluster.CrashNode(a->id()), "crash");
  const std::uint64_t t0 = cluster.clock().NowNanos();
  Check(cluster.RestartNodes({a->id()}), "restart");
  Check(cluster.RunTransaction(a->id(), [&](TxnHandle& txn) {
    return txn.Update(rids[kPages - 1], "first-after-restart");
  }), "first commit");
  VariantRow row;
  row.first_commit_ms = Ms(cluster.clock().NowNanos() - t0);
  row.pages_planned = a->metrics().CounterValue("restore.pages_planned");

  // Commit latency while the backlog drains: each transaction touches the
  // next cold page (first touch rebuilds it in the instant variant) while
  // the sim-mode sweeper retires one more page per commit behind it.
  std::vector<std::uint64_t> commit_ns;
  for (int i = 0; i < kCommitsDuringRebuild; ++i) {
    const RecordId rid = rids[i % kPages];
    const std::uint64_t c0 = cluster.clock().NowNanos();
    Check(cluster.RunTransaction(a->id(), [&](TxnHandle& txn) {
      return txn.Update(rid, "drain-" + std::to_string(i));
    }), "drain commit");
    commit_ns.push_back(cluster.clock().NowNanos() - c0);
  }
  row.commit_p50_ms = QuantileMs(commit_ns, 0.50);
  row.commit_p99_ms = QuantileMs(commit_ns, 0.99);

  while (a->RestorePendingCount() != 0) {
    if (a->SweepRestore(kPages) == 0) break;
  }
  std::system(("rm -rf " + dir).c_str());
  return row;
}

}  // namespace
}  // namespace clog::bench

int main(int argc, char** argv) {
  using namespace clog::bench;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  Banner("E10 (instant restore)",
         "Availability after losing a data device: eager media recovery "
         "rebuilds every page before the node opens, instant restore opens "
         "after planning and rebuilds on demand. Simulated time.");

  VariantRow eager = RunVariant(/*instant=*/false);
  VariantRow instant = RunVariant(/*instant=*/true);

  std::printf("%-28s %18s %18s\n", "", "eager", "instant");
  std::printf("%-28s %18.3f %18.3f\n", "first commit after restart (ms)",
              eager.first_commit_ms, instant.first_commit_ms);
  std::printf("%-28s %18.3f %18.3f\n", "commit p50 during rebuild (ms)",
              eager.commit_p50_ms, instant.commit_p50_ms);
  std::printf("%-28s %18.3f %18.3f\n", "commit p99 during rebuild (ms)",
              eager.commit_p99_ms, instant.commit_p99_ms);
  std::printf("%-28s %18llu %18llu\n", "pages planned",
              (unsigned long long)eager.pages_planned,
              (unsigned long long)instant.pages_planned);

  if (!json_path.empty()) {
    WriteJsonKv(
        json_path,
        {{"e10_first_commit_ms_eager", eager.first_commit_ms},
         {"e10_first_commit_ms_instant", instant.first_commit_ms},
         {"e10_commit_p50_ms_during_rebuild", instant.commit_p50_ms},
         {"e10_commit_p99_ms_during_rebuild", instant.commit_p99_ms},
         {"e10_commit_p99_ms_eager", eager.commit_p99_ms},
         {"e10_pages_planned", (double)instant.pages_planned}});
  }
  return 0;
}
