// A3 — Extension: record-level locking throughput (paper Section 4 /
// EDBT'96 follow-up).
//
// Several local sessions hammer records on a SMALL set of hot pages. With
// page-granularity locking every pair of sessions conflicts; with the
// record-granularity extension only same-record access does. Reports
// committed txns, busy waits, and deadlock aborts per configuration,
// sweeping the hot-set size.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

struct Row {
  std::uint64_t committed = 0;
  std::uint64_t busy_waits = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t sim_ns = 0;
};

Row Run(bool record_locking, std::size_t hot_pages) {
  std::string name = std::string("a3_") +
                     (record_locking ? "rec" : "page") +
                     std::to_string(hot_pages);
  BenchCluster bc(name, LoggingMode::kClientLocal, 128);
  Node* owner = Value(bc->AddNode(), "owner");
  // Record locking is a per-node option: the worker node gets it.
  NodeOptions opts;
  opts.local_record_locking = record_locking;
  opts.buffer_frames = 128;
  Node* worker = Value(bc->AddNode(opts), "worker");

  auto pages = Value(AllocatePopulatedPages(&bc.get(), owner->id(),
                                            hot_pages, 16, 48, 5),
                     "pages");

  // Four interleaved sessions on the SAME node: intra-node concurrency is
  // exactly what the extension buys.
  WorkloadConfig config;
  config.seed = 31;
  config.txns_per_session = 25;
  config.ops_per_txn = 4;
  config.update_fraction = 1.0;
  config.records_per_page = 16;
  config.payload_bytes = 48;
  std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
  for (int s = 0; s < 4; ++s) sessions.emplace_back(worker->id(), pages);
  WorkloadDriver driver(&bc.get(), config, sessions);
  Check(driver.Run(), "workload");

  Row row;
  row.committed = driver.stats().committed;
  row.busy_waits = driver.stats().busy_waits;
  row.deadlocks = driver.stats().aborted_deadlock;
  row.sim_ns = driver.stats().sim_ns;
  return row;
}

}  // namespace

int main() {
  Banner("A3 (extension: record-level locking)",
         "Four interleaved local sessions updating records on a small hot "
         "set of pages: page-granularity baseline vs the record-"
         "granularity extension (Section 4 / EDBT'96).");
  std::printf("%-10s | %-28s | %-28s\n", "", "page locks (baseline)",
              "record locks (extension)");
  std::printf("%-10s | %9s %9s %8s | %9s %9s %8s\n", "hot_pages",
              "committed", "busy", "dlocks", "committed", "busy", "dlocks");
  for (std::size_t pages : {1, 2, 4, 8}) {
    Row page_row = Run(false, pages);
    Row rec_row = Run(true, pages);
    std::printf("%-10zu | %9llu %9llu %8llu | %9llu %9llu %8llu\n", pages,
                static_cast<unsigned long long>(page_row.committed),
                static_cast<unsigned long long>(page_row.busy_waits),
                static_cast<unsigned long long>(page_row.deadlocks),
                static_cast<unsigned long long>(rec_row.committed),
                static_cast<unsigned long long>(rec_row.busy_waits),
                static_cast<unsigned long long>(rec_row.deadlocks));
  }
  std::printf(
      "\nexpected shape: identical committed counts (same workload), but "
      "the record-granularity runs see far fewer busy waits and deadlock "
      "aborts on small hot sets; the gap closes as pages stop being "
      "contended.\n");
  return 0;
}
