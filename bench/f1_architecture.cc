// F1 — Figure 1 reproduction: the distributed system architecture.
//
// Builds the exact topology of the paper's only figure — four networked
// nodes, where nodes 1 and 3 own databases (owner nodes with local logs)
// and nodes 2 and 4 are client nodes with local logs — runs a short data-
// shipping workload, and prints per-node roles and traffic so the
// architecture is visible in numbers.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

int main() {
  Banner("F1 (Figure 1)",
         "Architecture: owner nodes with databases + logs, client nodes "
         "with logs; pages ship to where transactions run.");

  BenchCluster bc("f1", LoggingMode::kClientLocal);
  Node* node1 = Value(bc->AddNode(), "node1");  // Owner.
  Node* node2 = Value(bc->AddNode(), "node2");  // Client.
  Node* node3 = Value(bc->AddNode(), "node3");  // Owner.
  Node* node4 = Value(bc->AddNode(), "node4");  // Client.

  auto db1 = Value(
      AllocatePopulatedPages(&bc.get(), node1->id(), 6, 8, 64, 11), "db1");
  auto db3 = Value(
      AllocatePopulatedPages(&bc.get(), node3->id(), 6, 8, 64, 12), "db3");

  // Every node runs transactions against both databases.
  std::vector<PageId> everything = db1;
  everything.insert(everything.end(), db3.begin(), db3.end());
  WorkloadConfig config;
  config.seed = 42;
  config.txns_per_session = 25;
  config.ops_per_txn = 6;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  WorkloadDriver driver(&bc.get(), config,
                        {{node1->id(), everything},
                         {node2->id(), everything},
                         {node3->id(), everything},
                         {node4->id(), everything}});
  Check(driver.Run(), "workload");

  std::printf("%-6s %-7s %-5s %-10s %-12s %-12s %-12s\n", "node", "role",
              "log", "db_pages", "log_records", "log_bytes", "pages_shipped");
  Node* nodes[] = {node1, node2, node3, node4};
  const char* roles[] = {"owner", "client", "owner", "client"};
  for (int i = 0; i < 4; ++i) {
    Node* n = nodes[i];
    std::printf("%-6u %-7s %-5s %-10llu %-12llu %-12llu %-12llu\n", n->id(),
                roles[i], "yes",
                static_cast<unsigned long long>(i % 2 == 0 ? 6 : 0),
                static_cast<unsigned long long>(n->log().appended_records()),
                static_cast<unsigned long long>(n->log().appended_bytes()),
                static_cast<unsigned long long>(
                    n->metrics().CounterValue("pages.shipped_on_replacement")));
  }

  std::printf("\ncommitted txns: %llu   deadlock aborts: %llu\n",
              static_cast<unsigned long long>(driver.stats().committed),
              static_cast<unsigned long long>(driver.stats().aborted_deadlock));
  std::printf("cluster traffic: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(
                  bc->network().metrics().CounterValue("msg.total")),
              static_cast<unsigned long long>(
                  bc->network().metrics().CounterValue("bytes.total")));
  std::printf("note: every node logged its own updates locally; no log "
              "records crossed the network (msg.log_ship = %llu)\n",
              static_cast<unsigned long long>(
                  bc->network().metrics().CounterValue("msg.log_ship")));
  return 0;
}
