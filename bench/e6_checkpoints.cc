// E6 — Independent fuzzy checkpoints (Section 2.2, key advantage (4)).
//
// "Each node can take a checkpoint without synchronizing with the rest of
// the operational nodes." We sweep the checkpoint interval on one client
// while a workload runs, and report (a) messages caused by checkpointing
// — must be zero — and (b) restart analysis work after a crash, which
// shrinks as checkpoints get more frequent: the checkpoint trade-off the
// recovery literature expects, with no distributed coordination anywhere.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

void RunRow(std::size_t ckpt_every) {
  BenchCluster bc("e6_" + std::to_string(ckpt_every),
                  LoggingMode::kClientLocal, 64);
  Node* server = Value(bc->AddNode(), "server");
  Node* client = Value(bc->AddNode(), "client");
  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 6, 8, 64, 17), "pages");

  Random rng(1);
  std::uint64_t ckpt_msgs = 0;
  std::size_t checkpoints = 0;
  // 119 is coprime-ish with every sweep interval: the crash lands mid
  // checkpoint cycle, so the tail the analysis must rescan reflects the
  // interval (119 % every transactions).
  const std::size_t kTxns = 119;
  for (std::size_t i = 0; i < kTxns; ++i) {
    TxnId txn = Value(client->Begin(), "begin");
    for (int op = 0; op < 4; ++op) {
      RecordId rid{pages[rng.Uniform(pages.size())],
                   static_cast<SlotId>(rng.Uniform(8))};
      Check(client->Update(txn, rid, rng.Bytes(64)), "update");
    }
    Check(client->Commit(txn), "commit");
    if (ckpt_every != 0 && (i + 1) % ckpt_every == 0) {
      std::uint64_t before =
          bc->network().metrics().CounterValue("msg.total");
      Check(client->Checkpoint(), "checkpoint");
      ckpt_msgs += bc->network().metrics().CounterValue("msg.total") - before;
      ++checkpoints;
    }
  }

  Check(bc->CrashNode(client->id()), "crash");
  Check(bc->RestartNode(client->id()), "restart");
  const auto& s = bc->recovery_stats().at(client->id());

  std::string label = ckpt_every == 0 ? "never" : std::to_string(ckpt_every);
  std::printf("%-12s %12zu %10llu %12llu %12.2f\n", label.c_str(),
              checkpoints, static_cast<unsigned long long>(ckpt_msgs),
              static_cast<unsigned long long>(s.analysis_records),
              Ms(s.sim_ns));
}

}  // namespace

int main() {
  Banner("E6 (independent checkpoints)",
         "Checkpoint interval sweep on one client: checkpoint messages "
         "(claim: zero — no synchronization) and restart analysis work "
         "after a crash.");
  std::printf("%-12s %12s %10s %12s %12s\n", "every_txns", "checkpoints",
              "ckpt_msgs", "analyzed", "recovery_ms");
  RunRow(0);  // Never checkpoint.
  for (std::size_t every : {60, 30, 10, 5}) RunRow(every);
  std::printf(
      "\nexpected shape: checkpoint messages are identically zero at every "
      "frequency; restart analysis shrinks as checkpoints get closer "
      "together.\n");
  return 0;
}
