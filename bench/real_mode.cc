// Real-threads wall-clock benchmarks (docs/architecture_modes.md).
//
// Everything in the other bench binaries runs on the deterministic
// simulator and reports *simulated* time. This binary is the other half of
// the dual-mode story: the same engine on real threads, a real clock, and
// real fsyncs, reporting wall-clock latency distributions the way log
// libraries (NanoLog, spdlog) report theirs — exact p50/p99.9 over raw
// per-operation samples, not histogram interpolation.
//
//   BM_LogAppend   N producer threads (1/2/4) appending 64-byte update
//                  records to ONE shared LogManager while a flusher thread
//                  forces the tail — the multi-producer staging-buffer
//                  shape from the CNanoLog pipeline. Measures the
//                  per-append critical section under contention.
//   BM_Commit      N client sessions (1/2/4), each a real thread on its
//                  own node, committing update transactions against its
//                  own pages (client-local logging: commit = one local
//                  log force, zero messages). Measures end-to-end commit
//                  latency including the real fsync.
//   BM_Recovery    Restart recovery wall clock at redo_workers 0/1/4
//                  under adaptive logging: classic per-page replay vs the
//                  dependency-parallel redo scheduler's worker pool
//                  (docs/RECOVERY_WALKTHROUGH.md "Parallel redo"). The
//                  speedup at 4 workers is the headline number.
//
// Results go to BENCH_real.json (scripts/run_bench.sh --real). They are
// wall-clock and machine-dependent: recorded for eyeballing trends, never
// gated (docs/performance.md).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "wal/log_manager.h"

using namespace clog;
using namespace clog::bench;

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct LatencyStats {
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p999_ns = 0;
};

/// Exact quantiles over the pooled raw samples (sorted, nearest-rank).
LatencyStats Summarize(std::vector<std::uint64_t> samples,
                       std::uint64_t wall_ns) {
  LatencyStats out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(q * (samples.size() - 1));
    return static_cast<double>(samples[rank]);
  };
  out.p50_ns = at(0.50);
  out.p999_ns = at(0.999);
  out.ops_per_sec = wall_ns == 0 ? 0
                                 : static_cast<double>(samples.size()) * 1e9 /
                                       static_cast<double>(wall_ns);
  return out;
}

LatencyStats MeasureLogAppend(int producers, int appends_per_producer) {
  // Memory-backed fs on purpose: this bench measures the WAL *front end*
  // (reservation, staging, drain assembly), and producers generate bytes
  // several times faster than a small host's disk absorbs them — on a real
  // device the whole pipeline degenerates to disk-bound within a second
  // and every configuration measures the same platter. The commit bench
  // below keeps its logs on the real filesystem.
  std::string dir = "/dev/shm/clog_bench_real_log";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  LogManager log;
  Check(log.Open(dir + "/wal.log"), "log open");
  // The measured configuration is the real-mode one: lock-free producer
  // front end with the background drainer assembling the tail.
  log.StartDrainer();

  std::vector<std::vector<std::uint64_t>> samples(producers);
  std::atomic<bool> done{false};
  std::uint64_t t0 = NowNs();

  // Background flusher: forces the shared tail in a loop, like the commit
  // path does under group commit. Producers measure only their append.
  std::thread flusher([&] {
    while (!done.load(std::memory_order_acquire)) {
      Check(log.Flush(log.end_lsn()), "flush");
      std::this_thread::yield();
    }
    Check(log.Flush(log.end_lsn()), "final flush");
  });

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      LogRecord rec;
      rec.type = LogRecordType::kUpdate;
      rec.txn = static_cast<TxnId>(p + 1);
      rec.page = PageId{0, static_cast<std::uint32_t>(p)};
      rec.redo_image.assign(64, 'a' + static_cast<char>(p % 26));
      std::vector<std::uint64_t>& mine = samples[p];
      mine.reserve(appends_per_producer);
      for (int i = 0; i < appends_per_producer; ++i) {
        Lsn lsn = 0;
        std::uint64_t s0 = NowNs();
        Check(log.Append(rec, &lsn), "append");
        mine.push_back(NowNs() - s0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::uint64_t wall = NowNs() - t0;
  done.store(true, std::memory_order_release);
  flusher.join();
  Check(log.Close(), "log close");
  std::system(("rm -rf " + dir).c_str());

  std::vector<std::uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return Summarize(std::move(all), wall);
}

LatencyStats MeasureCommit(int sessions, int txns_per_session) {
  std::string dir = "/tmp/clog_bench_real_commit";
  std::system(("rm -rf " + dir).c_str());
  ClusterOptions options;
  options.dir = dir;
  options.execution_mode = ExecutionMode::kRealThreads;
  options.node_defaults.buffer_frames = 256;
  Cluster cluster(options);

  // One node per session, each committing against its own pages: sessions
  // contend on nothing but the machine (scheduler, disk), which is exactly
  // the axis this bench sweeps.
  std::vector<std::vector<RecordId>> records(sessions);
  for (int s = 0; s < sessions; ++s) {
    Node* n = Value(cluster.AddNode(), "node");
    auto pages = Value(AllocatePopulatedPages(&cluster, n->id(), 4, 8, 64,
                                              /*seed=*/s + 1),
                       "pages");
    for (PageId pid : pages) {
      for (SlotId slot = 0; slot < 8; ++slot) {
        records[s].push_back(RecordId{pid, slot});
      }
    }
  }

  std::vector<std::vector<std::uint64_t>> samples(sessions);
  std::uint64_t t0 = NowNs();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Random rng(static_cast<std::uint64_t>(s) + 99);
      std::vector<std::uint64_t>& mine = samples[s];
      mine.reserve(txns_per_session);
      for (int i = 0; i < txns_per_session; ++i) {
        std::uint64_t s0 = NowNs();
        Status st = cluster.RunTransaction(
            static_cast<NodeId>(s), [&](TxnHandle& txn) -> Status {
              for (int u = 0; u < 4; ++u) {
                const RecordId& rid =
                    records[s][rng.Uniform(records[s].size())];
                CLOG_RETURN_IF_ERROR(txn.Update(rid, rng.Bytes(64)));
              }
              return Status::OK();
            });
        Check(st, "commit txn");
        mine.push_back(NowNs() - s0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::uint64_t wall = NowNs() - t0;

  std::vector<std::uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  LatencyStats out = Summarize(std::move(all), wall);
  std::system(("rm -rf " + dir).c_str());
  return out;
}

struct RecoveryResult {
  double wall_ms = 0;
  std::uint64_t chains = 0;
  std::uint64_t parallel_pages = 0;
  std::uint64_t applied = 0;
};

/// BM_Recovery: restart recovery wall clock vs redo worker count
/// (docs/RECOVERY_WALKTHROUGH.md "Parallel redo"). One owner commits
/// adaptive single-page transactions against 16 of its own pages, crashes
/// with the cache lost, and restarts. With redo_workers=0 the classic
/// path replays page by page, rescanning the log per page; with workers
/// the scheduler makes one raw pass and the pool checksums/decodes/
/// applies page-disjoint chains concurrently. Identical log, identical
/// final pages — only the redo engine differs.
RecoveryResult MeasureRecovery(std::size_t redo_workers, int rounds) {
  std::string dir = "/tmp/clog_bench_real_recovery";
  std::system(("rm -rf " + dir).c_str());
  ClusterOptions options;
  options.dir = dir;
  options.execution_mode = ExecutionMode::kRealThreads;
  options.node_defaults.buffer_frames = 64;
  options.logging_policy = LoggingPolicy()
                               .WithStrategy(LogStrategy::kAdaptive)
                               .WithRedoWorkers(redo_workers);
  Cluster cluster(options);
  Node* owner = Value(cluster.AddNode(), "owner");
  // A second node keeps the PSN-list exchange honest: it answers with an
  // empty list, proving the pages self-only rather than assuming it.
  Value(cluster.AddNode(), "peer");
  auto pages = Value(
      AllocatePopulatedPages(&cluster, owner->id(), 16, 8, 64, 7), "pages");

  Random rng(11);
  for (int r = 0; r < rounds; ++r) {
    for (PageId pid : pages) {
      Status st = cluster.RunTransaction(
          owner->id(), [&](TxnHandle& txn) -> Status {
            for (int u = 0; u < 4; ++u) {
              const RecordId rid{pid, static_cast<SlotId>(rng.Uniform(8))};
              CLOG_RETURN_IF_ERROR(txn.Update(rid, rng.Bytes(256)));
            }
            return Status::OK();
          });
      Check(st, "recovery workload txn");
    }
  }

  Check(cluster.CrashNode(owner->id()), "crash");
  std::uint64_t t0 = NowNs();
  Check(cluster.RestartNode(owner->id()), "restart");
  std::uint64_t wall = NowNs() - t0;

  const auto& s = cluster.recovery_stats().at(owner->id());
  RecoveryResult out;
  out.wall_ms = static_cast<double>(wall) / 1e6;
  out.chains = s.redo_chains;
  out.parallel_pages = s.parallel_pages;
  out.applied = s.redo_applied;

  // The recovered state must be servable whatever the engine was.
  Status st = cluster.RunTransaction(
      owner->id(), [&](TxnHandle& txn) -> Status {
        for (PageId pid : pages) {
          CLOG_RETURN_IF_ERROR(txn.ScanPage(pid).status());
        }
        return Status::OK();
      });
  Check(st, "post-recovery scan");
  std::system(("rm -rf " + dir).c_str());
  return out;
}

void WriteJson(const std::string& path,
               const std::vector<std::pair<std::string, double>>& kv) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH FATAL cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < kv.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.3f%s\n", kv[i].first.c_str(), kv[i].second,
                 i + 1 < kv.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg == "--quick") quick = true;
  }
  // Append phase must run whole seconds per configuration: at multi-million
  // appends/s a 100k run is over in ~30ms, and scheduler noise swamps the
  // thread-count comparison.
  const int appends = quick ? 5'000 : 1'000'000;
  const int txns = quick ? 20 : 200;

  Banner("real mode (wall clock)",
         "Multi-producer log append and end-to-end commit latency on the "
         "real-threads engine. Raw-sample p50/p99.9 in microseconds; "
         "machine-dependent, recorded but never gated.");

  std::vector<std::pair<std::string, double>> kv;

  std::printf("--- BM_LogAppend: shared log, %d appends/producer ---\n",
              appends);
  std::printf("%-10s | %12s %10s %10s\n", "producers", "appends/s", "p50_us",
              "p99.9_us");
  for (int producers : {1, 2, 4}) {
    LatencyStats st = MeasureLogAppend(producers, appends);
    std::printf("%-10d | %12.0f %10.2f %10.2f\n", producers, st.ops_per_sec,
                st.p50_ns / 1e3, st.p999_ns / 1e3);
    std::string key = "real_log_append_t" + std::to_string(producers);
    kv.push_back({key + "_ops_per_sec", st.ops_per_sec});
    kv.push_back({key + "_p50_ns", st.p50_ns});
    kv.push_back({key + "_p999_ns", st.p999_ns});
  }

  std::printf("\n--- BM_Commit: 4 updates/txn, %d txns/session ---\n", txns);
  std::printf("%-10s | %12s %10s %10s\n", "sessions", "commits/s", "p50_us",
              "p99.9_us");
  for (int sessions : {1, 2, 4}) {
    LatencyStats st = MeasureCommit(sessions, txns);
    std::printf("%-10d | %12.0f %10.2f %10.2f\n", sessions, st.ops_per_sec,
                st.p50_ns / 1e3, st.p999_ns / 1e3);
    std::string key = "real_commit_s" + std::to_string(sessions);
    kv.push_back({key + "_per_sec", st.ops_per_sec});
    kv.push_back({key + "_p50_ns", st.p50_ns});
    kv.push_back({key + "_p999_ns", st.p999_ns});
  }

  const int rounds = quick ? 10 : 100;
  std::printf(
      "\n--- BM_Recovery: 16 pages, %d single-page txns, crash+restart "
      "---\n",
      rounds * 16);
  std::printf("%-10s | %10s %7s %9s %9s\n", "workers", "wall_ms", "chains",
              "par_pages", "applied");
  double w0_ms = 0, w4_ms = 0;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1},
                              std::size_t{4}}) {
    RecoveryResult r = MeasureRecovery(workers, rounds);
    std::printf("%-10zu | %10.2f %7llu %9llu %9llu\n", workers, r.wall_ms,
                static_cast<unsigned long long>(r.chains),
                static_cast<unsigned long long>(r.parallel_pages),
                static_cast<unsigned long long>(r.applied));
    std::string key = "real_recovery_w" + std::to_string(workers);
    kv.push_back({key + "_ms", r.wall_ms});
    if (workers == 0) w0_ms = r.wall_ms;
    if (workers == 4) w4_ms = r.wall_ms;
  }
  const double speedup = w4_ms > 0 ? w0_ms / w4_ms : 0;
  std::printf("parallel redo speedup at 4 workers: %.2fx (target >= 1.5x)\n",
              speedup);
  kv.push_back({"real_recovery_parallel_speedup", speedup});

  if (!json_path.empty()) {
    WriteJson(json_path, kv);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
