// E5 — Multiple simultaneous crashes (Section 2.4).
//
// Owner + client crash together mid-workload. Each crashed node rebuilds
// a superset DPT from its own log (analysis), they exchange recovery
// state, coordinate redo in PSN order, and undo losers — still without
// merging any logs. Swept over how many of the 4 nodes crash.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

void RunRow(std::size_t crash_count) {
  BenchCluster bc("e5_" + std::to_string(crash_count),
                  LoggingMode::kClientLocal, 64);
  std::vector<Node*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(Value(bc->AddNode(), "node"));
  Node* owner = nodes[0];

  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), owner->id(), 8, 8, 64, 21), "pages");

  WorkloadConfig config;
  config.seed = 99 + crash_count;
  config.txns_per_session = 20;
  config.ops_per_txn = 6;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
  for (Node* n : nodes) sessions.emplace_back(n->id(), pages);
  WorkloadDriver driver(&bc.get(), config, sessions);
  Check(driver.Run(), "workload");

  std::vector<NodeId> victims;
  for (std::size_t i = 0; i < crash_count; ++i) {
    victims.push_back(nodes[i]->id());
    Check(bc->CrashNode(nodes[i]->id()), "crash");
  }
  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  std::uint64_t t0 = bc->clock().NowNanos();
  Check(bc->RestartNodes(victims), "joint restart");
  std::uint64_t sim = bc->clock().NowNanos() - t0;
  std::uint64_t msgs =
      bc->network().metrics().CounterValue("msg.total") - msgs0;

  std::uint64_t analyzed = 0, redone = 0, fetched = 0, applied = 0,
                losers = 0;
  for (NodeId v : victims) {
    const auto& s = bc->recovery_stats().at(v);
    analyzed += s.analysis_records;
    redone += s.own_pages_recovered + s.remote_pages_recovered;
    fetched += s.own_pages_fetched;
    applied += s.redo_applied;
    losers += s.losers_undone;
  }

  // Correctness from the survivor's (or anyone's) perspective.
  Node* reader = nodes[3];
  TxnId check = Value(reader->Begin(), "check");
  for (PageId pid : pages) Check(reader->ScanPage(check, pid).status(), "scan");
  Check(reader->Commit(check), "check commit");

  std::printf("%-8zu %9llu %8llu %8llu %8llu %8llu %8llu %9.2f\n",
              crash_count, static_cast<unsigned long long>(analyzed),
              static_cast<unsigned long long>(fetched),
              static_cast<unsigned long long>(redone),
              static_cast<unsigned long long>(applied),
              static_cast<unsigned long long>(losers),
              static_cast<unsigned long long>(msgs), Ms(sim));
}

}  // namespace

int main() {
  Banner("E5 (multiple crashes)",
         "Joint restart of k of 4 nodes (Section 2.4): superset-DPT "
         "reconstruction by each crashed node, then the same coordinated "
         "redo as the single-crash case.");
  std::printf("%-8s %9s %8s %8s %8s %8s %8s %9s\n", "crashed", "analyzed",
              "fetched", "redone", "applied", "losers", "msgs", "sim_ms");
  for (std::size_t k : {1, 2, 3, 4}) RunRow(k);
  std::printf(
      "\nexpected shape: recovery work grows with the number of crashed "
      "nodes (more logs analyzed, fewer caches to fetch from), yet each "
      "node still scans only its own log.\n");
  return 0;
}
