// A2 — Ablation: are the Section 2.5 flush notifications load-bearing?
//
// With notifications on, a client's DPT entries drop/advance when the
// owner forces pages, so the log reclaim horizon moves. With them off
// (ablated), entries pile up and the bounded log eventually cannot
// reclaim, stalling the update stream with LogFull. This bench runs the
// same bounded-log workload both ways and reports how far each gets.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

struct Row {
  std::size_t committed = 0;
  bool hit_log_full = false;
  std::size_t dpt_entries_left = 0;
  std::uint64_t reclaims = 0;
};

Row Run(bool notifications) {
  BenchCluster bc(std::string("a2_") + (notifications ? "on" : "off"),
                  LoggingMode::kClientLocal, 64);
  Node* server = Value(bc->AddNode(), "server");
  NodeOptions bounded;
  bounded.log_capacity_bytes = 48 * 1024;
  Node* client = Value(bc->AddNode(bounded), "client");
  // Ablate on the OWNER: it is the one sending notifications.
  server->set_send_flush_notifications(notifications);

  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 6, 8, 64, 19), "pages");
  Random rng(3);
  Row row;
  for (std::size_t i = 0; i < 200; ++i) {
    Result<TxnId> txn = client->Begin();
    if (!txn.ok()) {
      row.hit_log_full = txn.status().IsLogFull();
      break;
    }
    bool failed = false;
    for (int op = 0; op < 4 && !failed; ++op) {
      RecordId rid{pages[rng.Uniform(pages.size())],
                   static_cast<SlotId>(rng.Uniform(8))};
      Status st = client->Update(*txn, rid, rng.Bytes(200));
      if (st.IsLogFull()) {
        row.hit_log_full = true;
        failed = true;
      } else {
        Check(st, "update");
      }
    }
    if (failed) {
      client->Abort(*txn).ok();
      break;
    }
    Status st = client->Commit(*txn);
    if (st.IsLogFull()) {
      row.hit_log_full = true;
      break;
    }
    Check(st, "commit");
    ++row.committed;
  }
  row.dpt_entries_left = client->dpt().size();
  row.reclaims = client->metrics().CounterValue("logspace.victim_forces");
  return row;
}

}  // namespace

int main() {
  Banner("A2 (ablation: flush notifications)",
         "Bounded client log, identical workload, owner flush "
         "notifications on vs off. Without them the client's DPT entries "
         "never clear and the log wedges.");
  std::printf("%-16s %10s %10s %12s %10s\n", "notifications", "committed",
              "log_full", "dpt_left", "reclaims");
  for (bool on : {true, false}) {
    Row row = Run(on);
    std::printf("%-16s %10zu %10s %12zu %10llu\n", on ? "on" : "off (ablated)",
                row.committed, row.hit_log_full ? "YES" : "no",
                row.dpt_entries_left,
                static_cast<unsigned long long>(row.reclaims));
  }
  std::printf(
      "\nexpected shape: with notifications the full 200 transactions "
      "commit; ablated, the stream wedges on LogFull with DPT entries "
      "stuck — the Section 2.5 bookkeeping is what makes bounded local "
      "logs viable.\n");
  return 0;
}
