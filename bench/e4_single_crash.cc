// E4 — Single node crash recovery (Section 2.3).
//
// An owner and k clients update shared pages; the owner crashes at a
// random point and restarts through the full distributed protocol. We
// report the phases' work: log records analyzed locally, peers queried,
// pages fetched from caches vs redo-coordinated, redo records applied,
// losers undone, messages, and simulated recovery time — swept over the
// amount of pre-crash work. Correctness (committed data durable) is
// asserted on every row.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

void RunRow(std::size_t txns_before_crash) {
  BenchCluster bc("e4_" + std::to_string(txns_before_crash),
                  LoggingMode::kClientLocal, 64);
  Node* owner = Value(bc->AddNode(), "owner");
  Node* c1 = Value(bc->AddNode(), "c1");
  Node* c2 = Value(bc->AddNode(), "c2");

  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), owner->id(), 8, 8, 64, 9), "pages");

  WorkloadConfig config;
  config.seed = txns_before_crash;
  config.txns_per_session = txns_before_crash;
  config.ops_per_txn = 6;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  WorkloadDriver driver(&bc.get(), config,
                        {{owner->id(), pages},
                         {c1->id(), pages},
                         {c2->id(), pages}});
  Check(driver.Run(), "pre-crash workload");

  // Pull every page home (exclusive at the owner) so the crash loses the
  // only current copies and the log-based redo path is what gets measured;
  // without this the row degenerates to cached-copy fetches whenever the
  // random workload leaves client caches warm.
  Random rng(1);
  for (PageId pid : pages) {
    TxnId txn = Value(owner->Begin(), "pull");
    Check(owner->Update(txn, RecordId{pid, 0}, rng.Bytes(64)), "pull update");
    Check(owner->Commit(txn), "pull commit");
  }

  std::uint64_t msgs0 = bc->network().metrics().CounterValue("msg.total");
  Check(bc->CrashNode(owner->id()), "crash");
  Check(bc->RestartNode(owner->id()), "restart");
  const RestartRecovery::Stats& s = bc->recovery_stats().at(owner->id());
  std::uint64_t msgs =
      bc->network().metrics().CounterValue("msg.total") - msgs0;

  // Correctness: every page readable afterwards, cluster-wide.
  TxnId check = Value(c1->Begin(), "check");
  for (PageId pid : pages) {
    Check(c1->ScanPage(check, pid).status(), "scan");
  }
  Check(c1->Commit(check), "check commit");

  std::printf("%-10zu %9llu %6llu %8llu %8llu %8llu %8llu %8llu %9.2f\n",
              txns_before_crash,
              static_cast<unsigned long long>(s.analysis_records),
              static_cast<unsigned long long>(s.peers_queried),
              static_cast<unsigned long long>(s.own_pages_fetched),
              static_cast<unsigned long long>(s.own_pages_recovered),
              static_cast<unsigned long long>(s.redo_applied),
              static_cast<unsigned long long>(s.losers_undone),
              static_cast<unsigned long long>(msgs), Ms(s.sim_ns));
}

}  // namespace

int main() {
  Banner("E4 (single crash)",
         "Owner crash + Section 2.3 restart vs pre-crash work. No log "
         "merging: each node only ever scans its own log.");
  std::printf("%-10s %9s %6s %8s %8s %8s %8s %8s %9s\n", "txns", "analyzed",
              "peers", "fetched", "redone", "applied", "losers", "msgs",
              "sim_ms");
  for (std::size_t txns : {5, 10, 20, 40, 80}) RunRow(txns);
  std::printf(
      "\nexpected shape: analysis and redo grow with the log written since "
      "the last checkpoint (none is taken here, the worst case); every "
      "page is redo-coordinated from the involved nodes' own logs — no "
      "merged scan exists anywhere.\n");
  return 0;
}
