// A1 — Ablation: where does client-based logging stop winning?
//
// The paper's advantage rests on commit being a LOCAL log force instead of
// a network round trip to the server's log. That trade inverts when the
// client's stable storage is much slower than the network + server log
// (the 1996 objection to client disks, Section 1.2). We sweep the ratio
// client_log_force : (network msg + server log force) and report commit
// latency for client-local vs ship-to-owner, locating the crossover.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

double CommitLatencyMs(LoggingMode mode, std::uint64_t client_force_ns,
                       std::uint64_t network_msg_ns) {
  std::string name = std::string("a1_") + std::string(LoggingModeName(mode)) +
                     std::to_string(client_force_ns / 1000) + "_" +
                     std::to_string(network_msg_ns / 1000);
  std::system(("rm -rf /tmp/clog_bench_" + name).c_str());
  ClusterOptions options;
  options.dir = "/tmp/clog_bench_" + name;
  options.node_defaults.logging_mode = mode;
  options.node_defaults.buffer_frames = 64;
  options.cost.network_msg_ns = network_msg_ns;
  options.cost.log_force_ns = client_force_ns;
  Cluster cluster(options);
  // Asymmetric hardware: the server's log rides battery-backed fast
  // storage (1 ms force) regardless of how slow the client's disk is.
  Node* server = Value(cluster.AddNode(), "server");
  Node* client = Value(cluster.AddNode(), "client");
  server->set_log_force_ns_override(1'000'000);
  client->set_log_force_ns_override(client_force_ns);
  auto pages =
      Value(AllocatePopulatedPages(&cluster, server->id(), 4, 8, 64, 13),
            "pages");
  Random rng(5);
  // Warm cache/locks.
  TxnId warm = Value(client->Begin(), "warm");
  for (PageId pid : pages) {
    Check(client->Update(warm, RecordId{pid, 0}, rng.Bytes(64)), "warm");
  }
  Check(client->Commit(warm), "warm commit");

  const std::size_t kTxns = 40;
  std::uint64_t t0 = cluster.clock().NowNanos();
  for (std::size_t i = 0; i < kTxns; ++i) {
    TxnId txn = Value(client->Begin(), "begin");
    for (int op = 0; op < 4; ++op) {
      Check(client->Update(txn, RecordId{pages[op % 4], 0}, rng.Bytes(64)),
            "update");
    }
    Check(client->Commit(txn), "commit");
  }
  double ms = Ms((cluster.clock().NowNanos() - t0) / kTxns);
  std::system(("rm -rf /tmp/clog_bench_" + name).c_str());
  return ms;
}

}  // namespace

int main() {
  Banner("A1 (ablation: cost sensitivity)",
         "Commit latency vs the client log-force : network-hop cost ratio. "
         "Client-based logging wins while a local force is cheaper than "
         "the commit's network round trips; a slow client disk on a fast "
         "LAN inverts the verdict — the 1996 objection, quantified.");

  std::printf("%-22s %-12s %14s %14s %10s\n", "client_force", "net_msg",
              "client-local", "ship-to-owner", "winner");
  const std::uint64_t kNet = 500'000;  // 0.5 ms per hop.
  for (std::uint64_t force_us : {500, 1000, 2000, 5000, 10000, 20000}) {
    std::uint64_t force_ns = force_us * 1000;
    double local = CommitLatencyMs(LoggingMode::kClientLocal, force_ns, kNet);
    double ship = CommitLatencyMs(LoggingMode::kShipToOwner, force_ns, kNet);
    char force_label[32];
    std::snprintf(force_label, sizeof(force_label), "%.1fms",
                  static_cast<double>(force_us) / 1000.0);
    std::printf("%-22s %-12s %12.2fms %12.2fms %10s\n", force_label, "0.5ms",
                local, ship, local <= ship ? "local" : "ship");
  }
  std::printf(
      "\nexpected shape: local wins at realistic disk/LAN ratios; the "
      "crossover appears once a client log force costs more than the "
      "whole ship-to-owner round trip (both modes force somewhere, so "
      "only the messaging difference remains).\n");
  return 0;
}
