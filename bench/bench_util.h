#ifndef CLOG_BENCH_BENCH_UTIL_H_
#define CLOG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/workload.h"

/// \file
/// Shared scaffolding for the experiment binaries (DESIGN.md Section 3).
/// Each binary regenerates one experiment's table: workload setup, sweep,
/// and aligned rows of message/byte/IO/simulated-time metrics. Absolute
/// numbers depend on the cost model; the *shape* (who wins, by what
/// factor, where curves cross) is the reproduction target.

namespace clog::bench {

/// Scratch cluster living under /tmp, wiped on construction.
class BenchCluster {
 public:
  explicit BenchCluster(const std::string& name, LoggingMode mode,
                        std::size_t buffer_frames = 256,
                        std::uint64_t log_capacity = 0,
                        const LoggingPolicy& policy = {}) {
    dir_ = "/tmp/clog_bench_" + name;
    std::system(("rm -rf " + dir_).c_str());
    ClusterOptions options;
    options.dir = dir_;
    options.logging_policy = policy;
    options.node_defaults.logging_mode = mode;
    options.node_defaults.buffer_frames = buffer_frames;
    options.node_defaults.log_capacity_bytes = log_capacity;
    cluster_ = std::make_unique<Cluster>(options);
  }
  ~BenchCluster() { std::system(("rm -rf " + dir_).c_str()); }

  Cluster* operator->() { return cluster_.get(); }
  Cluster& get() { return *cluster_; }

 private:
  std::string dir_;
  std::unique_ptr<Cluster> cluster_;
};

/// Aborts the binary on error — benches have no recovery story.
inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "BENCH FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Value(Result<T> r, const char* what) {
  Check(r.status(), what);
  return std::move(r).value();
}

/// Prints the experiment banner.
inline void Banner(const char* id, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", id, claim);
}

/// Simulated nanoseconds -> milliseconds for printing.
inline double Ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }
/// Same, for interpolated histogram quantiles (HistogramStat::p50 etc.).
inline double Ms(double ns) { return ns / 1e6; }

/// Transactions per simulated second.
inline double Tps(std::uint64_t txns, std::uint64_t sim_ns) {
  return sim_ns == 0 ? 0.0
                     : static_cast<double>(txns) * 1e9 /
                           static_cast<double>(sim_ns);
}

/// Writes a flat `{"key": number, ...}` map — the format every recorded
/// BENCH_*.json file uses and scripts/check_bench_regression.py reads.
inline void WriteJsonKv(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& kv) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH FATAL cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < kv.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6f%s\n", kv[i].first.c_str(), kv[i].second,
                 i + 1 < kv.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace clog::bench

#endif  // CLOG_BENCH_BENCH_UTIL_H_
