// E3 — No page forcing at commit or replacement.
//
// Paper claim (key advantage (1), Section 4): "updated pages are not
// forced to disk at transaction commit time or when they are replaced
// from a node cache." A cache-pressure workload (working set larger than
// the client's pool) drives steady replacement traffic; we count forced
// page writes at the owner per committed transaction for the paper's
// protocol vs the force-at-transfer baseline.

#include "bench/bench_util.h"

using namespace clog;
using namespace clog::bench;

namespace {

struct Row {
  std::uint64_t forced_writes = 0;
  std::uint64_t page_ships = 0;
  std::uint64_t committed = 0;
  std::uint64_t makespan_ns = 0;
};

Row Measure(LoggingMode mode, std::size_t buffer_frames) {
  BenchCluster bc(std::string("e3_") + std::string(LoggingModeName(mode)) +
                      std::to_string(buffer_frames),
                  mode, /*buffer_frames=*/512);
  Node* server = Value(bc->AddNode(), "server");
  NodeOptions small;
  small.logging_mode = mode;
  small.buffer_frames = buffer_frames;  // Pressure point.
  Node* client = Value(bc->AddNode(), "client");
  (void)client;
  Node* tiny = Value(bc->AddNode(small), "tiny");

  auto pages = Value(
      AllocatePopulatedPages(&bc.get(), server->id(), 24, 8, 64, 3), "pages");

  std::uint64_t writes0 = server->disk().writes();
  WorkloadConfig config;
  config.seed = 5;
  config.txns_per_session = 40;
  config.ops_per_txn = 6;
  config.update_fraction = 1.0;
  config.records_per_page = 8;
  config.payload_bytes = 64;
  bc->network().ResetBusy();
  WorkloadDriver driver(&bc.get(), config, {{tiny->id(), pages}});
  Check(driver.Run(), "workload");

  Row row;
  row.forced_writes = server->disk().writes() - writes0;
  row.page_ships =
      bc->network().metrics().CounterValue("msg.page_ship");
  row.committed = driver.stats().committed;
  row.makespan_ns = bc->network().MaxBusyNanos();
  return row;
}

}  // namespace

int main() {
  Banner("E3 (no force)",
         "Owner disk writes per committed txn under cache pressure: "
         "replaced dirty pages ship home WITHOUT a disk force "
         "(client-local) vs forced at every transfer (B2).");

  std::printf("%-8s | %-30s | %-30s\n", "", "client-local",
              "force-at-transfer (B2)");
  std::printf("%-8s | %6s %6s %8s %7s | %6s %6s %8s %7s\n", "frames",
              "writes", "ships", "w/txn", "ms", "writes", "ships", "w/txn",
              "ms");
  for (std::size_t frames : {4, 8, 16, 32}) {
    Row local = Measure(LoggingMode::kClientLocal, frames);
    Row force = Measure(LoggingMode::kForceAtTransfer, frames);
    std::printf(
        "%-8zu | %6llu %6llu %8.2f %7.1f | %6llu %6llu %8.2f %7.1f\n", frames,
        static_cast<unsigned long long>(local.forced_writes),
        static_cast<unsigned long long>(local.page_ships),
        local.committed ? static_cast<double>(local.forced_writes) /
                              local.committed
                        : 0,
        Ms(local.makespan_ns),
        static_cast<unsigned long long>(force.forced_writes),
        static_cast<unsigned long long>(force.page_ships),
        force.committed ? static_cast<double>(force.forced_writes) /
                              force.committed
                        : 0,
        Ms(force.makespan_ns));
  }
  std::printf(
      "\nexpected shape: B2 pays roughly one disk write per transferred "
      "page; client-local writes only on owner-side eviction, far fewer "
      "per committed transaction, and the gap widens as the cache "
      "shrinks.\n");
  return 0;
}
