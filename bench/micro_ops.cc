// Microbenchmarks (google-benchmark): real wall-clock cost of the hot
// primitives under everything else — record operations, log append,
// CRC32C, codec, slotted-page ops, buffer pool lookups. These are the
// constants behind the simulated-cost experiments.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "core/cluster.h"
#include "storage/slotted_page.h"
#include "wal/log_manager.h"

namespace clog {
namespace {

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

// The slice-by-8 software path, pinned regardless of what the runtime
// dispatcher picked — the denominator of the hardware-CRC speedup.
void BM_Crc32cPortable(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::ValuePortable(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cPortable)->Arg(64)->Arg(4096)->Arg(65536);

void BM_VarintRoundTrip(benchmark::State& state) {
  Random rng(1);
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> rng.Uniform(64);
  for (auto _ : state) {
    std::string buf;
    Encoder enc(&buf);
    for (std::uint64_t v : values) enc.PutVarint64(v);
    Decoder dec(buf);
    std::uint64_t out;
    for (std::size_t i = 0; i < values.size(); ++i) {
      dec.GetVarint64(&out).ok();
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_VarintRoundTrip);

void BM_LogRecordEncodeDecode(benchmark::State& state) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn = MakeTxnId(1, 42);
  rec.page = PageId{0, 7};
  rec.psn_before = 1234;
  rec.redo_image = std::string(static_cast<std::size_t>(state.range(0)), 'r');
  rec.undo_image = std::string(static_cast<std::size_t>(state.range(0)), 'u');
  for (auto _ : state) {
    std::string body;
    rec.EncodeTo(&body);
    LogRecord out;
    LogRecord::DecodeFrom(body, &out).ok();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LogRecordEncodeDecode)->Arg(32)->Arg(256);

void BM_SlottedPageInsertDelete(benchmark::State& state) {
  Page page;
  page.Format(PageId{0, 0}, PageType::kData, 0);
  SlottedPage sp(&page);
  sp.InitBody();
  std::string payload(100, 'p');
  for (auto _ : state) {
    Result<SlotId> slot = sp.Insert(payload);
    if (slot.ok()) {
      sp.Delete(*slot).ok();
    } else {
      state.SkipWithError("page full");
      break;
    }
  }
}
BENCHMARK(BM_SlottedPageInsertDelete);

void BM_LogAppend(benchmark::State& state) {
  std::string dir = "/tmp/clog_micro_log";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  LogManager log;
  if (!log.Open(dir + "/log").ok()) {
    state.SkipWithError("open failed");
    return;
  }
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.page = PageId{0, 1};
  rec.redo_image = std::string(static_cast<std::size_t>(state.range(0)), 'r');
  Lsn lsn;
  for (auto _ : state) {
    log.Append(rec, &lsn).ok();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(log.appended_bytes()));
  std::system(("rm -rf " + dir).c_str());
}
BENCHMARK(BM_LogAppend)->Arg(64)->Arg(512);

void BM_LogAppendWithForce(benchmark::State& state) {
  std::string dir = "/tmp/clog_micro_force";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  LogManager log;
  if (!log.Open(dir + "/log").ok()) {
    state.SkipWithError("open failed");
    return;
  }
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  Lsn lsn;
  for (auto _ : state) {
    log.Append(rec, &lsn).ok();
    log.Flush(lsn).ok();  // Real fdatasync per iteration.
  }
  std::system(("rm -rf " + dir).c_str());
}
BENCHMARK(BM_LogAppendWithForce)->Iterations(200);

void BM_SingleNodeCommittedTxn(benchmark::State& state) {
  std::string dir = "/tmp/clog_micro_txn";
  std::system(("rm -rf " + dir).c_str());
  ClusterOptions options;
  options.dir = dir;
  // Zero simulated costs: measure the engine's real CPU + IO path.
  options.cost = CostModel{0, 0, 0, 0, 0, 0, 0};
  Cluster cluster(options);
  Node* node = *cluster.AddNode();
  PageId pid = *node->AllocatePage();
  Random rng(9);
  RecordId rid{pid, 0};
  {
    TxnId seed = *node->Begin();
    rid = *node->Insert(seed, pid, rng.Bytes(64));
    node->Commit(seed).ok();
  }
  for (auto _ : state) {
    TxnId txn = *node->Begin();
    node->Update(txn, rid, rng.Bytes(64)).ok();
    if (!node->Commit(txn).ok()) {
      state.SkipWithError("commit failed");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::system(("rm -rf " + dir).c_str());
}
BENCHMARK(BM_SingleNodeCommittedTxn)->Iterations(500);

void BM_RemotePageCachedUpdate(benchmark::State& state) {
  std::string dir = "/tmp/clog_micro_remote";
  std::system(("rm -rf " + dir).c_str());
  ClusterOptions options;
  options.dir = dir;
  options.cost = CostModel{0, 0, 0, 0, 0, 0, 0};
  Cluster cluster(options);
  Node* server = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  PageId pid = *server->AllocatePage();
  Random rng(9);
  RecordId rid{pid, 0};
  {
    TxnId seed = *client->Begin();
    rid = *client->Insert(seed, pid, rng.Bytes(64));
    client->Commit(seed).ok();
  }
  for (auto _ : state) {
    TxnId txn = *client->Begin();
    client->Update(txn, rid, rng.Bytes(64)).ok();
    if (!client->Commit(txn).ok()) {
      state.SkipWithError("commit failed");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::system(("rm -rf " + dir).c_str());
}
BENCHMARK(BM_RemotePageCachedUpdate)->Iterations(500);

}  // namespace
}  // namespace clog

BENCHMARK_MAIN();
